"""Discrete-event spine of the simulator.

Everything with non-unit latency (coherence messages, directory lookups,
memory fetches, functional-unit completions) is an event on a single
global heap.  The multicore harness is a pure event pump over this heap:
it pumps only runnable cores and jumps the clock straight to the next
event or live core wake whenever nothing is runnable — clamped to the
caller's cycle budget — which is what makes a pure-Python timing model
usable at the paper's experiment scale.  The legacy cycle-stepping loop
survives behind ``quiesce=False`` as the differential baseline.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable

from repro.memory.interconnect import MeshNetwork
from repro.memory.messages import Message
from repro.sanitize.errors import UnknownEndpointError

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import Tracer


class DeadlockError(RuntimeError):
    """Raised when no core can progress and no event is pending."""


class EventEngine:
    """Global clock + event heap + message fabric.

    ``tracer`` (optional) observes every routed message: because mesh
    delivery is deterministic, both the send and the delivery cycle are
    known at :meth:`send` time, so tracing adds no events of its own to
    the heap — it is timing-transparent by construction.
    """

    def __init__(
        self, network: MeshNetwork, tracer: "Tracer | None" = None
    ) -> None:
        self.network = network
        self.tracer = tracer
        self.now = 0
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._tiebreak = itertools.count()
        self._endpoints: dict[int, Callable[[Message], None]] = {}
        self._dir_endpoints: dict[int, Callable[[Message], None]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_core_endpoint(
        self, node: int, handler: Callable[[Message], None]
    ) -> None:
        self._endpoints[node] = handler

    def register_dir_endpoint(
        self, node: int, handler: Callable[[Message], None]
    ) -> None:
        self._dir_endpoints[node] = handler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, cycle: int, action: Callable[[], None]) -> None:
        if cycle < self.now:
            raise ValueError(f"cannot schedule at {cycle}, now is {self.now}")
        heapq.heappush(self._heap, (cycle, next(self._tiebreak), action))

    def schedule_in(self, delay: int, action: Callable[[], None]) -> None:
        # A negative delay is always a latency-arithmetic bug at the call
        # site; clamping it to "now" (as this method once did) hides the
        # defect and silently reorders events.  Fail loudly instead.
        if delay < 0:
            raise ValueError(
                f"negative event delay {delay} at cycle {self.now} — "
                f"latency arithmetic at the call site went negative"
            )
        self.schedule(self.now + delay, action)

    def send(self, msg: Message, to_directory: bool) -> None:
        """Route a message through the mesh and deliver it as an event."""
        arrival = self.network.delivery_cycle(msg.src, msg.dst, self.now)
        registry = self._dir_endpoints if to_directory else self._endpoints
        handler = registry.get(msg.dst)
        if handler is None:
            raise UnknownEndpointError(msg.dst, to_directory=to_directory, msg=msg)
        # Deliver strictly in the future so a handler never runs mid-cycle
        # for the component that sent it.
        deliver = max(arrival, self.now + 1)
        if self.tracer is not None:
            self.tracer.coh(self.now, deliver, msg, to_directory)
        self.schedule(deliver, lambda: handler(msg))

    # ------------------------------------------------------------------
    # Clock control
    # ------------------------------------------------------------------

    @property
    def next_event_cycle(self) -> int | None:
        return self._heap[0][0] if self._heap else None

    def run_events(self) -> bool:
        """Run every event due at the current cycle; True if any ran."""
        # Hot loop: the heap list identity is stable (schedule() pushes into
        # the same object), so locals are safe across action() re-entry.
        heap = self._heap
        now = self.now
        if not heap or heap[0][0] > now:
            return False
        pop = heapq.heappop
        while heap and heap[0][0] <= now:
            pop(heap)[2]()
        return True

    def advance(
        self,
        idle: bool,
        wake_bound: int | None = None,
        limit: int | None = None,
    ) -> None:
        """Move the clock forward one cycle, or jump to the next event.

        ``idle`` means no core did (or can do) work this cycle: then nothing
        changes until the next scheduled event, so the clock jumps straight
        to it.  ``wake_bound`` is the earliest scheduled core wake (see
        :meth:`repro.core.pipeline.Core.next_wake_cycle`): the jump never
        overshoots a sleeping core's scheduled resume cycle, so per-core
        fast-forward can skip idle stretches without missing a wake.  If
        idle with an empty heap and no pending wake, the system is
        deadlocked.

        ``limit`` is the caller's cycle budget: an idle jump is clamped to
        ``limit + 1`` so a run that exhausts its budget stops *at* the
        budget boundary instead of fast-forwarding arbitrarily far past it
        (the harness checks ``now > max_cycles`` only after the jump).
        """
        if not idle:
            self.now += 1
            return
        nxt = self.next_event_cycle
        if wake_bound is not None and (nxt is None or wake_bound < nxt):
            nxt = wake_bound
        if nxt is None:
            raise DeadlockError(f"no pending events at cycle {self.now}")
        if limit is not None and nxt > limit:
            nxt = limit + 1
        self.now = max(nxt, self.now + 1)
