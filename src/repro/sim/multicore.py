"""Multicore simulator harness.

Builds the full system — mesh network, directory/L3 banks, per-core private
cache controllers and out-of-order cores — runs a :class:`Program` to
completion, and returns a :class:`RunResult` with every statistic the
paper's figures consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.params import SystemParams
from repro.common.stats import AtomicLatencyBreakdown, StatGroup, merge_groups
from repro.core.pipeline import Core
from repro.isa.instructions import Program
from repro.memory.controller import PrivateCacheController
from repro.memory.directory import DirectoryBank
from repro.memory.image import MemoryImage
from repro.memory.interconnect import MeshNetwork
from repro.obs.tracer import resolve_tracer
from repro.sim.engine import DeadlockError, EventEngine


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    program_name: str
    params: SystemParams
    cycles: int
    instructions: int
    core_stats: list[StatGroup]
    controller_stats: list[StatGroup]
    directory_stats: StatGroup
    network_stats: StatGroup
    breakdown: AtomicLatencyBreakdown
    memory_snapshot: dict[int, int] = field(default_factory=dict)
    per_core_cycles: list[int] = field(default_factory=list)
    load_values: list[dict[int, int]] = field(default_factory=list)
    # The EventTrace when tracing was requested (None otherwise).  A pure
    # observer: nothing above this field ever depends on it.
    trace: object | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def merged_core_stats(self) -> StatGroup:
        return merge_groups(self.core_stats, "cores")

    def merged_controller_stats(self) -> StatGroup:
        return merge_groups(self.controller_stats, "controllers")

    # Derived metrics used by the analysis layer -----------------------

    def atomics_committed(self) -> int:
        return self.merged_core_stats().counter("atomics_committed").value

    def atomics_per_10k(self) -> float:
        if not self.instructions:
            return 0.0
        return 1e4 * self.atomics_committed() / self.instructions

    def contended_fraction(self) -> float:
        atomics = self.atomics_committed()
        if not atomics:
            return 0.0
        contended = self.merged_core_stats().counter("atomics_contended_truth").value
        return contended / atomics

    def avg_miss_latency(self) -> float:
        return self.merged_controller_stats().accumulator("miss_latency").mean

    def predictor_accuracy(self) -> float:
        merged = self.merged_core_stats()
        outcomes = merged.counter("outcomes").value
        if not outcomes:
            return 1.0
        return merged.counter("correct").value / outcomes


class MulticoreSimulator:
    """One fully assembled CMP executing one program.

    ``sanitize`` attaches the runtime invariant checkers from
    :mod:`repro.sanitize.runtime` (pass ``True`` for the defaults or a
    :class:`~repro.sanitize.runtime.SanitizerConfig` to pick checkers).
    Off by default: an unsanitized simulator runs the exact seed bytecode.

    ``trace`` attaches the cycle-level observability layer from
    :mod:`repro.obs` (pass ``True`` for defaults, a
    :class:`~repro.obs.tracer.TraceConfig` to filter/sample, or your own
    :class:`~repro.obs.tracer.Tracer`).  Tracing is a pure observer:
    a traced run produces the same :class:`RunResult` statistics as an
    untraced one.
    """

    def __init__(
        self,
        params: SystemParams,
        program: Program,
        sanitize: "bool | object" = False,
        trace: "bool | object" = False,
    ) -> None:
        params.validate()
        if program.num_threads > params.num_cores:
            raise ValueError(
                f"program has {program.num_threads} threads but the system "
                f"has only {params.num_cores} cores"
            )
        program.validate()
        self.params = params
        self.program = program
        self.tracer = resolve_tracer(trace)
        self.network_stats = StatGroup("network")
        self.network = MeshNetwork(params, self.network_stats)
        self.engine = EventEngine(self.network, tracer=self.tracer)
        self.image = MemoryImage(program.initial_memory)
        self.directory_stats = StatGroup("directory")
        self.banks = [
            DirectoryBank(
                node,
                params,
                self.engine,
                self.directory_stats,
                image=self.image,
                tracer=self.tracer,
            )
            for node in range(params.num_cores)
        ]
        self.controllers: list[PrivateCacheController] = []
        self.cores: list[Core] = []
        for cid in range(params.num_cores):
            controller = PrivateCacheController(cid, params, self.engine)
            self.controllers.append(controller)
            self.engine.register_core_endpoint(cid, controller.receive)
            self.engine.register_dir_endpoint(cid, self.banks[cid].receive)
        for cid, core_trace in enumerate(program.traces):
            core = Core(
                cid,
                params,
                core_trace,
                self.engine,
                self.controllers[cid],
                self.image,
                tracer=self.tracer,
            )
            self.cores.append(core)
        self._apply_warmup()
        self.sanitizer = None
        if sanitize:
            from repro.sanitize.runtime import SanitizerConfig, attach_sanitizers

            config = sanitize if isinstance(sanitize, SanitizerConfig) else None
            self.sanitizer = attach_sanitizers(self, config)

    def _apply_warmup(self) -> None:
        """Pre-install steady-state-hot regions declared by the workload.

        Private regions warm as Exclusive in their owner's L2 (directory
        records the owner); the shared read region warms as Shared in every
        core that runs a thread.  Capacity-capped so warmup never evicts
        itself.
        """
        spec = self.program.metadata.get("warmup")
        if not spec:
            return
        l2_lines = self.params.l2.num_lines
        for cid, base_line, count in spec.get("private", ()):
            if cid >= len(self.cores):
                continue
            controller = self.controllers[cid]
            for line in range(base_line, base_line + min(count, (3 * l2_lines) // 4)):
                controller.state[line] = "E"
                controller.l2.insert(line)
                bank = self.banks[self.network.bank_of(line)]
                entry = bank.entry(line)
                entry.state = "M"
                entry.owner = cid
                bank.l3.insert(line)
        shared = spec.get("shared")
        if shared:
            base_line, count = shared
            active = list(range(len(self.cores)))
            for line in range(base_line, base_line + min(count, l2_lines // 4)):
                for cid in active:
                    self.controllers[cid].state[line] = "S"
                    self.controllers[cid].l2.insert(line)
                bank = self.banks[self.network.bank_of(line)]
                entry = bank.entry(line)
                entry.state = "S"
                entry.sharers = set(active)
                bank.l3.insert(line)

    def run(self, max_cycles: int = 50_000_000) -> RunResult:
        """Simulate until every core finished its trace (and drained)."""
        engine = self.engine
        cores = self.cores
        prune_at = 100_000
        while True:
            engine.run_events()
            now = engine.now
            any_work = False
            all_done = True
            for core in cores:
                if core.step(now):
                    any_work = True
                if not core.done:
                    all_done = False
            if all_done:
                break
            if now > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(program {self.program.name!r})"
                )
            if now > prune_at:
                self.network.prune(now - 10_000)
                prune_at = now + 100_000
            try:
                engine.advance(idle=not any_work)
            except DeadlockError as exc:
                raise DeadlockError(
                    f"{exc} — program {self.program.name!r}, "
                    f"cores done: {[c.done for c in cores]}"
                ) from exc
        if self.sanitizer is not None:
            self.sanitizer.final_check()
        breakdown = AtomicLatencyBreakdown()
        for core in cores:
            breakdown.merge(core.breakdown)
        instructions = sum(len(t) for t in self.program.traces)
        return RunResult(
            program_name=self.program.name,
            params=self.params,
            cycles=engine.now,
            instructions=instructions,
            core_stats=[c.stats for c in cores],
            controller_stats=[c.stats for c in self.controllers],
            directory_stats=self.directory_stats,
            network_stats=self.network_stats,
            breakdown=breakdown,
            memory_snapshot=self.image.snapshot(),
            per_core_cycles=[c.finish_cycle or engine.now for c in cores],
            load_values=[c.load_values for c in cores],
            trace=self.tracer,
        )


def simulate(
    params: SystemParams,
    program: Program,
    max_cycles: int = 50_000_000,
    sanitize: "bool | object" = False,
    trace: "bool | object" = False,
) -> RunResult:
    """Convenience one-shot: build the system and run the program."""
    sim = MulticoreSimulator(params, program, sanitize=sanitize, trace=trace)
    return sim.run(max_cycles=max_cycles)
