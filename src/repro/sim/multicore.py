"""Multicore simulator harness.

Builds the full system — mesh network, directory/L3 banks, per-core private
cache controllers and out-of-order cores — runs a :class:`Program` to
completion, and returns a :class:`RunResult` with every statistic the
paper's figures consume.
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass, field

from repro.common.params import SystemParams
from repro.common.stats import AtomicLatencyBreakdown, StatGroup, merge_groups
from repro.core.pipeline import Core
from repro.isa.instructions import Program
from repro.memory.controller import PrivateCacheController
from repro.memory.directory import DirectoryBank
from repro.memory.image import MemoryImage
from repro.memory.interconnect import MeshNetwork
from repro.obs.tracer import resolve_tracer
from repro.sim.engine import DeadlockError, EventEngine


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    program_name: str
    params: SystemParams
    cycles: int
    instructions: int
    core_stats: list[StatGroup]
    controller_stats: list[StatGroup]
    directory_stats: StatGroup
    network_stats: StatGroup
    breakdown: AtomicLatencyBreakdown
    memory_snapshot: dict[int, int] = field(default_factory=dict)
    per_core_cycles: list[int] = field(default_factory=list)
    load_values: list[dict[int, int]] = field(default_factory=list)
    # Scheduler-side instrumentation (step/skip/wake counters from the
    # quiescence-aware spine).  Observer-only: never feeds RunMetrics.
    spine: dict = field(default_factory=dict)
    # The EventTrace when tracing was requested (None otherwise).  A pure
    # observer: nothing above this field ever depends on it.
    trace: object | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def merged_core_stats(self) -> StatGroup:
        return merge_groups(self.core_stats, "cores")

    def merged_controller_stats(self) -> StatGroup:
        return merge_groups(self.controller_stats, "controllers")

    # Derived metrics used by the analysis layer -----------------------

    def atomics_committed(self) -> int:
        return self.merged_core_stats().counter("atomics_committed").value

    def atomics_per_10k(self) -> float:
        if not self.instructions:
            return 0.0
        return 1e4 * self.atomics_committed() / self.instructions

    def contended_fraction(self) -> float:
        atomics = self.atomics_committed()
        if not atomics:
            return 0.0
        contended = self.merged_core_stats().counter("atomics_contended_truth").value
        return contended / atomics

    def avg_miss_latency(self) -> float:
        return self.merged_controller_stats().accumulator("miss_latency").mean

    def predictor_accuracy(self) -> float:
        merged = self.merged_core_stats()
        outcomes = merged.counter("outcomes").value
        if not outcomes:
            return 1.0
        return merged.counter("correct").value / outcomes


class MulticoreSimulator:
    """One fully assembled CMP executing one program.

    ``sanitize`` attaches the runtime invariant checkers from
    :mod:`repro.sanitize.runtime` (pass ``True`` for the defaults or a
    :class:`~repro.sanitize.runtime.SanitizerConfig` to pick checkers).
    Off by default: an unsanitized simulator runs the exact seed bytecode.

    ``trace`` attaches the cycle-level observability layer from
    :mod:`repro.obs` (pass ``True`` for defaults, a
    :class:`~repro.obs.tracer.TraceConfig` to filter/sample, or your own
    :class:`~repro.obs.tracer.Tracer`).  Tracing is a pure observer:
    a traced run produces the same :class:`RunResult` statistics as an
    untraced one.

    ``quiesce`` (default True) enables the quiescence-aware scheduler:
    only awake cores are stepped, and the idle fast-forward is bounded by
    ``min(next event, earliest scheduled core wake)``.  Timing-transparent
    by construction — identical cycle counts and statistics either way
    (docs/performance.md walks the argument); ``False`` falls back to the
    step-every-core-every-cycle legacy loop, kept as the differential
    baseline for tests and benchmarks.
    """

    def __init__(
        self,
        params: SystemParams,
        program: Program,
        sanitize: "bool | object" = False,
        trace: "bool | object" = False,
        quiesce: bool = True,
    ) -> None:
        params.validate()
        if program.num_threads > params.num_cores:
            raise ValueError(
                f"program has {program.num_threads} threads but the system "
                f"has only {params.num_cores} cores"
            )
        program.validate()
        self.params = params
        self.program = program
        self.tracer = resolve_tracer(trace)
        self.network_stats = StatGroup("network")
        self.network = MeshNetwork(params, self.network_stats)
        self.engine = EventEngine(self.network, tracer=self.tracer)
        self.image = MemoryImage(program.initial_memory)
        self.directory_stats = StatGroup("directory")
        self.banks = [
            DirectoryBank(
                node,
                params,
                self.engine,
                self.directory_stats,
                image=self.image,
                tracer=self.tracer,
            )
            for node in range(params.num_cores)
        ]
        self.controllers: list[PrivateCacheController] = []
        self.cores: list[Core] = []
        for cid in range(params.num_cores):
            controller = PrivateCacheController(cid, params, self.engine)
            self.controllers.append(controller)
            self.engine.register_core_endpoint(cid, controller.receive)
            self.engine.register_dir_endpoint(cid, self.banks[cid].receive)
        for cid, core_trace in enumerate(program.traces):
            core = Core(
                cid,
                params,
                core_trace,
                self.engine,
                self.controllers[cid],
                self.image,
                tracer=self.tracer,
            )
            self.cores.append(core)
        self._apply_warmup()
        self.quiesce = quiesce
        # Spine instrumentation: loop iterations, core-step calls,
        # sleep->wake transitions, lazily discarded stale wake entries and
        # do-nothing pump iterations.  Plain ints on the hot path; exported
        # as the ``RunResult.spine`` dict (and consumed by the perf smoke
        # gate in ``repro check`` and by ``benchmarks/bench_spine.py``).
        self._iterations = 0
        self._step_calls = 0
        self._wake_count = 0
        self._stale_wakes = 0
        self._empty_iterations = 0
        # (wake cycle, core id) min-heap mirroring every core's scheduled
        # timed wakes; its top bounds the idle fast-forward in run().
        self._wake_heap: list[tuple[int, int]] = []
        # Runnable queue: core ids whose awake flag just went up.  The
        # event pump drains it in core-id order instead of scanning every
        # core every iteration; membership invariant is awake & not done
        # (wakes of finished cores are filtered at drain time).
        self._runq: list[int] = []
        if quiesce:
            wake_heap = self._wake_heap
            runq = self._runq

            def scheduler(cycle: int, core: Core, _push=heapq.heappush) -> None:
                _push(wake_heap, (cycle, core.core_id))

            def sink(core: Core, _push=heapq.heappush) -> None:
                self._wake_count += 1
                _push(runq, core.core_id)

            for core in self.cores:
                core._wake_scheduler = scheduler
                core._wake_sink = sink
        self.sanitizer = None
        if sanitize:
            from repro.sanitize.runtime import SanitizerConfig, attach_sanitizers

            config = sanitize if isinstance(sanitize, SanitizerConfig) else None
            self.sanitizer = attach_sanitizers(self, config)

    def _apply_warmup(self) -> None:
        """Pre-install steady-state-hot regions declared by the workload.

        Private regions warm as Exclusive in their owner's L2 (directory
        records the owner); the shared read region warms as Shared in every
        core that runs a thread.  Capacity-capped so warmup never evicts
        itself.
        """
        spec = self.program.metadata.get("warmup")
        if not spec:
            return
        l2_lines = self.params.l2.num_lines
        for cid, base_line, count in spec.get("private", ()):
            if cid >= len(self.cores):
                continue
            controller = self.controllers[cid]
            for line in range(base_line, base_line + min(count, (3 * l2_lines) // 4)):
                controller.state[line] = "E"
                controller.l2.insert(line)
                bank = self.banks[self.network.bank_of(line)]
                entry = bank.entry(line)
                entry.state = "M"
                entry.owner = cid
                bank.l3.insert(line)
        shared = spec.get("shared")
        if shared:
            base_line, count = shared
            active = list(range(len(self.cores)))
            for line in range(base_line, base_line + min(count, l2_lines // 4)):
                for cid in active:
                    self.controllers[cid].state[line] = "S"
                    self.controllers[cid].l2.insert(line)
                bank = self.banks[self.network.bank_of(line)]
                entry = bank.entry(line)
                entry.state = "S"
                entry.sharers = set(active)
                bank.l3.insert(line)

    def run(self, max_cycles: int = 50_000_000) -> RunResult:
        """Simulate until every core finished its trace (and drained).

        This is the anchor of the `determinism` effect rule: nothing
        reachable from here may be NONDET (host clock, unseeded
        randomness, unordered set iteration) — the static counterpart of
        the golden bit-identity gate.
        """
        engine = self.engine
        cores = self.cores
        # The run loop allocates millions of short-lived tuples, closures
        # and DynInstrs; generational GC passes over them are pure
        # overhead (everything reachable stays reachable until the run
        # ends).  Pause automatic collection for the duration — the
        # reference cycles DynInstr consumer lists create are reclaimed
        # by the collector once it is re-enabled.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self.quiesce:
                self._run_quiesced(max_cycles)
            else:
                self._run_always_step(max_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()
        if self.sanitizer is not None:
            self.sanitizer.final_check()
        breakdown = AtomicLatencyBreakdown()
        for core in cores:
            breakdown.merge(core.breakdown)
        instructions = sum(len(t) for t in self.program.traces)
        return RunResult(
            program_name=self.program.name,
            params=self.params,
            cycles=engine.now,
            instructions=instructions,
            core_stats=[c.stats for c in cores],
            controller_stats=[c.stats for c in self.controllers],
            directory_stats=self.directory_stats,
            network_stats=self.network_stats,
            breakdown=breakdown,
            memory_snapshot=self.image.snapshot(),
            # ``is None``, not truthiness: a core with an empty trace
            # legitimately finishes at cycle 0.
            per_core_cycles=[
                engine.now if c.finish_cycle is None else c.finish_cycle
                for c in cores
            ],
            load_values=[c.load_values for c in cores],
            spine=self.spine_snapshot(),
            trace=self.tracer,
        )

    def spine_snapshot(self) -> dict:
        """Scheduler counters: how much stepping the spine avoided.

        Accurate after *every* exit path — normal completion, deadlock and
        budget abort all flush the loop-local counters (the abort paths
        used to lose them).  ``stale_wakes`` counts wake-heap entries
        lazily discarded because their core finished or their wake was
        already retired; ``empty_iterations`` counts pump passes that ran
        no event, fired no wake and pumped no core (a healthy event pump
        reports zero — ``repro check`` gates on it).
        """
        possible = self._iterations * len(self.cores)
        skipped = possible - self._step_calls
        return {
            "quiesce": self.quiesce,
            "iterations": self._iterations,
            "step_calls": self._step_calls,
            "possible_steps": possible,
            "skipped_steps": skipped,
            "skipped_fraction": (skipped / possible) if possible else 0.0,
            "wakes": self._wake_count,
            "stale_wakes": self._stale_wakes,
            "empty_iterations": self._empty_iterations,
        }

    def _run_quiesced(self, max_cycles: int) -> None:
        """Pure event pump: run due events, fire due wakes, pump runnables.

        Nothing is polled.  Each pass drains the engine heap at ``now``,
        retires due timed wakes (lazily discarding stale entries for
        finished cores or wakes an earlier firing already consumed), then
        pumps exactly the cores whose wake flag is up — in core-id order,
        via the runnable queue the wake sink feeds — through
        :meth:`Core.pump`, the batched-kernel twin of ``step``.  A core
        whose pump does no work leaves the runnable queue until
        ``note_activity`` re-raises its ``awake`` flag (message delivery,
        completion callbacks) or a scheduled timed wake comes due; cross-
        core effects travel only through strictly-future events, so no new
        runnable entries can appear mid-batch.  The idle fast-forward is
        bounded by the (stale-pruned) wake heap and clamped to the cycle
        budget, so the pump never visits a cycle it has nothing to do in
        and never overshoots ``max_cycles`` by more than one bound check.
        Timing-transparent vs. the always-step loop: see
        docs/performance.md for the invariant.
        """
        engine = self.engine
        cores = self.cores
        wake_heap = self._wake_heap
        runq = self._runq
        pop = heapq.heappop
        push = heapq.heappush
        run_events = engine.run_events
        advance = engine.advance
        prune_at = 100_000
        iterations = 0
        step_calls = 0
        stale_wakes = 0
        empty_iterations = 0
        remaining = sum(1 for c in cores if not c.done)
        for core in cores:
            if core.awake and not core.done:
                push(runq, core.core_id)
        try:
            while True:
                events_ran = run_events()
                now = engine.now
                # Retire timed wakes due this cycle; discard stale entries.
                fired = False
                while wake_heap and wake_heap[0][0] <= now:
                    cycle, cid = pop(wake_heap)
                    core = cores[cid]
                    if core.wake_is_stale(cycle):
                        stale_wakes += 1
                        continue
                    core.fire_due_wakes(now)
                    fired = True
                iterations += 1
                any_work = False
                pumped = False
                if runq:
                    # Snapshot the runnable queue in core-id order.  Pumps
                    # cannot wake other cores synchronously (cross-core
                    # effects are strictly-future events), so entries
                    # pushed while pumping belong to the next pass.
                    batch = []
                    while runq:
                        core = cores[pop(runq)]
                        if core.awake and not core.done:
                            batch.append(core)
                    for core in batch:
                        pumped = True
                        step_calls += 1
                        if core.pump(now):
                            any_work = True
                        else:
                            core.awake = False
                        if core.done:
                            remaining -= 1
                        elif core.awake:
                            push(runq, core.core_id)
                if remaining == 0:
                    break
                if not (events_ran or fired or pumped):
                    empty_iterations += 1
                if now > max_cycles:
                    raise RuntimeError(
                        f"simulation exceeded {max_cycles} cycles "
                        f"(program {self.program.name!r})"
                    )
                if now > prune_at:
                    self.network.prune(now - 10_000)
                    prune_at = now + 100_000
                # Lazily prune stale heads so the idle jump never targets
                # a dead cycle (a wake bound for a finished core used to
                # stall the fast-forward at cycles where nothing happens).
                while wake_heap and cores[wake_heap[0][1]].wake_is_stale(
                    wake_heap[0][0]
                ):
                    pop(wake_heap)
                    stale_wakes += 1
                try:
                    # Idle-jump whenever no core is runnable: an empty
                    # runq means nothing can happen until the next event
                    # or wake even if this pass did work, so jumping is
                    # timing-transparent and the pump never burns a pass
                    # on a cycle with nothing due (``empty_iterations``
                    # stays structurally zero).
                    advance(
                        idle=not runq,
                        wake_bound=wake_heap[0][0] if wake_heap else None,
                        limit=max_cycles,
                    )
                except DeadlockError as exc:
                    reasons = {
                        c.core_id: c.quiescence_reason() for c in cores
                    }
                    raise DeadlockError(
                        f"{exc} — program {self.program.name!r}, "
                        f"cores done: {[c.done for c in cores]}, "
                        f"quiescence: {reasons}"
                    ) from exc
        finally:
            # Every exit path — normal completion, deadlock, budget
            # abort — flushes the loop-local counters so spine_snapshot()
            # stays accurate (the RuntimeError path used to lose them).
            self._iterations += iterations
            self._step_calls += step_calls
            self._stale_wakes += stale_wakes
            self._empty_iterations += empty_iterations

    def _run_always_step(self, max_cycles: int) -> None:
        """Legacy loop: every core steps every cycle.

        Kept as the differential baseline: tests and ``bench_spine.py``
        compare its statistics and wall-clock against the quiescence-aware
        loop.
        """
        engine = self.engine
        cores = self.cores
        prune_at = 100_000
        iterations = 0
        try:
            while True:
                engine.run_events()
                now = engine.now
                iterations += 1
                any_work = False
                all_done = True
                for core in cores:
                    if core.step(now):
                        any_work = True
                    if not core.done:
                        all_done = False
                if all_done:
                    break
                if now > max_cycles:
                    raise RuntimeError(
                        f"simulation exceeded {max_cycles} cycles "
                        f"(program {self.program.name!r})"
                    )
                if now > prune_at:
                    self.network.prune(now - 10_000)
                    prune_at = now + 100_000
                try:
                    engine.advance(idle=not any_work, limit=max_cycles)
                except DeadlockError as exc:
                    raise DeadlockError(
                        f"{exc} — program {self.program.name!r}, "
                        f"cores done: {[c.done for c in cores]}"
                    ) from exc
        finally:
            # Flush on every exit path so spine_snapshot() stays accurate
            # after a budget abort (which used to lose the counters).
            self._iterations += iterations
            self._step_calls += iterations * len(cores)


def simulate(
    params: SystemParams,
    program: Program,
    max_cycles: int = 50_000_000,
    sanitize: "bool | object" = False,
    trace: "bool | object" = False,
    quiesce: bool = True,
) -> RunResult:
    """Convenience one-shot: build the system and run the program."""
    sim = MulticoreSimulator(
        params, program, sanitize=sanitize, trace=trace, quiesce=quiesce
    )
    return sim.run(max_cycles=max_cycles)
