"""urllib client for the campaign service (``repro client``/``--remote``)."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Iterator


class ServiceError(RuntimeError):
    """The service rejected a request (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Thin synchronous client over the NDJSON/JSON HTTP surface."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> bytes:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/x-yaml")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(exc.code, detail) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    def _json(self, method: str, path: str, body: bytes | None = None) -> dict:
        return json.loads(self._request(method, path, body))

    # -- API -----------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def submit(self, spec_text: str, scale: str | None = None) -> dict:
        """Submit a campaign spec (YAML/JSON text); returns its status."""
        path = "/campaigns"
        if scale is not None:
            path += "?" + urllib.parse.urlencode({"scale": scale})
        return self._json("POST", path, spec_text.encode())

    def status(self, campaign_id: str) -> dict:
        return self._json("GET", f"/campaigns/{campaign_id}")

    def list_campaigns(self) -> list[dict]:
        return self._json("GET", "/campaigns")["campaigns"]

    def results(self, campaign_id: str) -> list[dict]:
        """The finished campaign's NDJSON result rows, decoded."""
        body = self._request("GET", f"/campaigns/{campaign_id}/results")
        return [
            json.loads(line)
            for line in body.decode().splitlines()
            if line.strip()
        ]

    def events(self, campaign_id: str) -> Iterator[dict]:
        """The campaign's event log (the stream, read to completion)."""
        body = self._request("GET", f"/campaigns/{campaign_id}/events")
        for line in body.decode().splitlines():
            if line.strip():
                yield json.loads(line)

    def wait(
        self,
        campaign_id: str,
        timeout: float = 600.0,
        poll: float = 0.2,
    ) -> dict:
        """Poll until the campaign reaches done/failed; returns the status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(campaign_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0,
                    f"campaign {campaign_id[:12]} still"
                    f" {status['state']} after {timeout:.0f}s",
                )
            time.sleep(poll)
