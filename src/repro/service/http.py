"""Stdlib-asyncio HTTP/1.1 surface for the campaign service.

No web framework: requests are hand-parsed from the stream reader
(request line, headers, ``Content-Length`` body), which keeps the service
dependency-free.  The protocol is deliberately tiny:

==========================  =================================================
``GET  /healthz``           liveness + campaign count
``POST /campaigns``         submit a spec (YAML/JSON body, ``?scale=`` to
                            override); 202 with the campaign status, 400 on
                            a schema error.  Idempotent: resubmitting the
                            same spec at the same scale returns the
                            existing campaign.
``GET  /campaigns``         statuses of every known campaign
``GET  /campaigns/ID``      one campaign's status (404 unknown)
``GET  /campaigns/ID/results``  NDJSON result rows (409 until done)
``GET  /campaigns/ID/events``   NDJSON event stream, closed after the
                            terminal done/failed event
==========================  =================================================

The single-writer discipline lives in :class:`~repro.service.fabric
.ShardPool` (its dispatcher thread); handlers only read pool state or
enqueue submissions, so the event loop never blocks on a simulation.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.parse

from repro.service.fabric import CampaignRun, ShardPool
from repro.service.schema import CampaignError, loads_campaign

#: Campaign specs are small; anything bigger than this is a client bug.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
}


class CampaignService:
    """Routes HTTP requests onto one :class:`ShardPool`."""

    def __init__(self, pool: ShardPool) -> None:
        self.pool = pool

    # -- low-level plumbing --------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, target, body = request
                await self._route(writer, method, target, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > MAX_BODY_BYTES:
            return method, target, None  # routed to a 413 below
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        content_type: str = "application/json",
    ) -> None:
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        else:
            body = payload if isinstance(payload, bytes) else str(payload).encode()
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode()
        )
        writer.write(body)

    def _error(self, writer, status: int, message: str) -> None:
        self._respond(writer, status, {"error": message})

    # -- routing -------------------------------------------------------

    async def _route(self, writer, method: str, target: str, body) -> None:
        url = urllib.parse.urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(url.query)
        if body is None:
            self._error(writer, 413, "campaign spec too large")
            return
        if path in ("/", "/healthz"):
            if method != "GET":
                self._error(writer, 405, "use GET")
                return
            self._respond(
                writer,
                200,
                {"ok": True, "campaigns": len(self.pool.list_runs())},
            )
            return
        if path == "/campaigns":
            if method == "POST":
                await self._submit(writer, body, query)
            elif method == "GET":
                self._respond(
                    writer,
                    200,
                    {"campaigns": [r.status() for r in self.pool.list_runs()]},
                )
            else:
                self._error(writer, 405, "use GET or POST")
            return
        if path.startswith("/campaigns/"):
            rest = path[len("/campaigns/"):].split("/")
            run = self.pool.get(rest[0])
            if run is None:
                self._error(writer, 404, f"unknown campaign {rest[0]!r}")
                return
            if method != "GET":
                self._error(writer, 405, "use GET")
                return
            if len(rest) == 1:
                self._respond(writer, 200, run.status())
            elif rest[1] == "results":
                self._results(writer, run)
            elif rest[1] == "events":
                await self._events(writer, run)
            else:
                self._error(writer, 404, f"unknown endpoint {rest[1]!r}")
            return
        self._error(writer, 404, f"unknown path {path!r}")

    async def _submit(self, writer, body: bytes, query: dict) -> None:
        scale = query.get("scale", [None])[0]
        try:
            campaign = loads_campaign(body.decode("utf-8", "replace"))
            run = self.pool.submit(campaign, scale)
        except (CampaignError, ValueError) as exc:
            self._error(writer, 400, str(exc))
            return
        self._respond(writer, 202, run.status())

    def _results(self, writer, run: CampaignRun) -> None:
        try:
            rows = run.result_rows()
        except CampaignError as exc:
            self._error(writer, 409, str(exc))
            return
        body = "".join(
            json.dumps(row, sort_keys=True) + "\n" for row in rows
        ).encode()
        self._respond(writer, 200, body, content_type="application/x-ndjson")

    async def _events(self, writer, run: CampaignRun) -> None:
        """Tail the campaign's event log as NDJSON until it terminates."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        index = 0
        while True:
            events = self.pool.events_since(run, index)
            index += len(events)
            for event in events:
                writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
            await writer.drain()
            if run.state in ("done", "failed") and not self.pool.events_since(
                run, index
            ):
                return
            await asyncio.sleep(0.05)


# ---------------------------------------------------------------------------
# Server runners
# ---------------------------------------------------------------------------


async def serve_async(
    pool: ShardPool, host: str = "127.0.0.1", port: int = 8765
) -> asyncio.AbstractServer:
    service = CampaignService(pool)
    return await asyncio.start_server(service.handle, host, port)


def run_service(
    pool: ShardPool, host: str = "127.0.0.1", port: int = 8765
) -> None:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop)."""

    async def _main() -> None:
        server = await serve_async(pool, host, port)
        bound = server.sockets[0].getsockname()
        print(f"repro serve: listening on http://{bound[0]}:{bound[1]}")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        pool.stop(wait=True)


class ServiceThread:
    """An in-process server on a background thread (tests, check gate).

    ``port=0`` binds an ephemeral port; :attr:`url` is valid once
    :meth:`start` returns.
    """

    def __init__(
        self, pool: ShardPool, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.pool = pool
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("service thread failed to start")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await serve_async(self.pool, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop_event.wait()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=10)
