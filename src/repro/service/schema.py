"""The declarative campaign format: versioned YAML/JSON experiment specs.

A *campaign* names a whole experiment — the (workload × config × seed)
grid behind one figure family, ablation or sweep — plus an output
directive saying what to render from it.  The same spec file drives the
offline ``repro campaign run`` path, the ``repro serve`` HTTP service and
the figure functions themselves (each ``figureN`` loads its committed
spec from ``campaigns/``), so CI, notebooks and the service all expand
exactly the same grid.

Grammar (YAML or JSON; YAML requires the optional ``pyyaml``)::

    campaign: 1                # required: CAMPAIGN_SCHEMA_VERSION
    name: fig1
    description: ...
    scale: quick               # default scale; CLI --scale overrides
    base: scale                # base params: scale|quick|small|paper
    workloads: [canneal, ...]  # sugar for a single grid, or:
    configs:
      - {name: eager, mode: eager}
      - {name: lazy, mode: lazy}
    grids:                     # explicit multi-grid form
      - workloads: [...]
        configs: [...]
        seeds: [0, 1]          # optional; default: the scale's seeds
        num_threads: 8         # optional; default: the scale's
        instructions_per_thread: 4000
    output: {kind: figure, id: fig1}

A config entry accepts ``mode`` (required), ``detection``, ``predictor``,
``forwarding``, ``latency_threshold`` (``null`` = +inf), ``consistency``
(a :class:`~repro.common.params.ConsistencyKind` name — ``tso`` or
``relaxed``), plus raw ``params:`` / ``row:`` field overrides for
ablation sweeps.  A workload entry is either a profile name or
``{base, name, overrides}``.  The ``kind: microbench`` variant (Fig. 2)
swaps grids for ``machines``/``ops``/``variants``/``iterations`` axes;
``kind: litmus`` swaps them for ``programs``/``models`` axes validated
against the litmus registry and the consistency models (it runs through
the interleaving oracle, not the RunSpec grid).

Parsing is strict: unknown fields and a wrong ``campaign:`` version are
:class:`CampaignError`\\ s (the CLI maps them to exit code 2), never
silently ignored — a typo'd axis must not silently shrink a grid.

This module deliberately imports nothing from :mod:`repro.analysis` at
module level (the figure functions import the service layer, so an eager
import here would be circular); scale names are validated lazily.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.common.params import (
    AtomicMode,
    ConsistencyKind,
    DetectionMode,
    PredictorKind,
    RowParams,
    SystemParams,
)
from repro.common.schema import CAMPAIGN_SCHEMA_VERSION
from repro.isa.instructions import AtomicOp
from repro.workloads.microbench import VARIANTS as MICROBENCH_VARIANTS
from repro.workloads.profiles import WORKLOADS, WorkloadProfile

try:  # pyyaml is optional; JSON specs work without it.
    import yaml as _yaml
except ModuleNotFoundError:  # pragma: no cover - environment-dependent
    _yaml = None


class CampaignError(ValueError):
    """A malformed campaign spec (bad version, unknown field, bad value)."""


#: Sentinel for "the config builder's default" — distinct from an explicit
#: ``latency_threshold: null`` (which means +inf).
UNSET = "default"

MACHINES: tuple[str, ...] = ("old-x86", "new-x86")
BASE_PRESETS: tuple[str, ...] = ("scale", "quick", "small", "paper")
OUTPUT_KINDS: tuple[str, ...] = ("none", "figure", "ablation")

# atomic_mode/row have dedicated config keys; consistency_model has the
# ``consistency`` key (so it goes through ConsistencyKind.from_name, not
# a raw-string dataclass replace).
_PARAM_FIELDS = frozenset(
    f.name for f in dataclasses.fields(SystemParams)
) - {"atomic_mode", "row", "consistency_model"}
_ROW_FIELDS = frozenset(f.name for f in dataclasses.fields(RowParams))
_PROFILE_FIELDS = frozenset(
    f.name for f in dataclasses.fields(WorkloadProfile)
) - {"name"}


def _freeze(value):
    """YAML lists become tuples so resolved params/profiles stay hashable."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _check_keys(payload: dict, allowed: tuple[str, ...], where: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise CampaignError(
            f"{where}: unknown field(s) {', '.join(unknown)};"
            f" allowed: {', '.join(allowed)}"
        )


def _require(payload: dict, key: str, where: str):
    if key not in payload:
        raise CampaignError(f"{where}: missing required field {key!r}")
    return payload[key]


# ---------------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigSpec:
    """One named run configuration (a column of a figure)."""

    name: str
    mode: str
    detection: str | None = None
    predictor: str | None = None
    forwarding: bool = False
    latency_threshold: int | None | str = UNSET
    consistency: str | None = None  # ConsistencyKind name; None = base's
    params: dict = field(default_factory=dict)  # SystemParams overrides
    row: dict = field(default_factory=dict)  # RowParams overrides

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "mode": self.mode}
        if self.detection is not None:
            out["detection"] = self.detection
        if self.predictor is not None:
            out["predictor"] = self.predictor
        if self.consistency is not None:
            out["consistency"] = self.consistency
        if self.forwarding:
            out["forwarding"] = True
        if self.latency_threshold != UNSET:
            out["latency_threshold"] = self.latency_threshold
        if self.params:
            out["params"] = dict(sorted(self.params.items()))
        if self.row:
            out["row"] = dict(sorted(self.row.items()))
        return out


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload axis entry: a profile name, optionally renamed/overridden.

    ``profile`` carries an in-memory :class:`WorkloadProfile` literal for
    programmatic campaigns (e.g. ablation helpers); it never appears in a
    spec file and such a campaign cannot be dumped.
    """

    base: str
    name: str | None = None
    overrides: dict = field(default_factory=dict)
    profile: WorkloadProfile | None = None

    @property
    def label(self) -> str:
        if self.profile is not None:
            return self.profile.name
        return self.name if self.name is not None else self.base

    def to_dict(self):
        if self.profile is not None:
            raise CampaignError(
                f"workload {self.label!r} wraps an in-memory profile and"
                " cannot be serialized; use base/overrides instead"
            )
        if self.name is None and not self.overrides:
            return self.base
        out: dict = {"base": self.base}
        if self.name is not None:
            out["name"] = self.name
        if self.overrides:
            out["overrides"] = dict(sorted(self.overrides.items()))
        return out


@dataclass(frozen=True)
class GridSpec:
    """One (workloads × configs × seeds) block of a campaign."""

    workloads: tuple[WorkloadSpec, ...]
    configs: tuple[ConfigSpec, ...]
    seeds: tuple[int, ...] | None = None
    num_threads: int | None = None
    instructions_per_thread: int | None = None

    def to_dict(self) -> dict:
        out: dict = {
            "workloads": [w.to_dict() for w in self.workloads],
            "configs": [c.to_dict() for c in self.configs],
        }
        if self.seeds is not None:
            out["seeds"] = list(self.seeds)
        if self.num_threads is not None:
            out["num_threads"] = self.num_threads
        if self.instructions_per_thread is not None:
            out["instructions_per_thread"] = self.instructions_per_thread
        return out


@dataclass(frozen=True)
class OutputSpec:
    """What to render once the grid is in the cache."""

    kind: str = "none"
    id: str | None = None

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.id is not None:
            out["id"] = self.id
        return out


@dataclass(frozen=True)
class Campaign:
    """A parsed, validated campaign spec."""

    name: str
    description: str = ""
    kind: str = "grid"
    scale: str | None = None
    base: str = "scale"
    grids: tuple[GridSpec, ...] = ()
    # microbench axes (kind == "microbench" only)
    machines: tuple[str, ...] = ()
    ops: tuple[str, ...] = ()
    variants: tuple[str, ...] = ()
    iterations: object = None  # int, or {scale-name: int}
    # litmus axes (kind == "litmus" only)
    programs: tuple[str, ...] = ()
    models: tuple[str, ...] = ()
    output: OutputSpec = field(default_factory=OutputSpec)

    # -- programmatic axis overrides (figure kwargs ride through these) --

    def with_workloads(self, workloads) -> "Campaign":
        """Replace every grid's workload axis (figure ``workloads=`` kwarg)."""
        specs = tuple(as_workload_spec(w) for w in workloads)
        return dataclasses.replace(
            self,
            grids=tuple(
                dataclasses.replace(g, workloads=specs) for g in self.grids
            ),
        )

    def with_configs(self, configs, grid: int = 0) -> "Campaign":
        """Replace one grid's config axis (threshold/entry-sweep kwargs)."""
        grids = list(self.grids)
        grids[grid] = dataclasses.replace(grids[grid], configs=tuple(configs))
        return dataclasses.replace(self, grids=tuple(grids))

    def to_dict(self) -> dict:
        out: dict = {
            "campaign": CAMPAIGN_SCHEMA_VERSION,
            "name": self.name,
        }
        if self.description:
            out["description"] = self.description
        if self.kind != "grid":
            out["kind"] = self.kind
        if self.scale is not None:
            out["scale"] = self.scale
        if self.base != "scale":
            out["base"] = self.base
        if self.kind == "microbench":
            out["machines"] = list(self.machines)
            out["ops"] = list(self.ops)
            out["variants"] = list(self.variants)
            if self.iterations is not None:
                out["iterations"] = self.iterations
        elif self.kind == "litmus":
            out["programs"] = list(self.programs)
            out["models"] = list(self.models)
        else:
            out["grids"] = [g.to_dict() for g in self.grids]
        if self.output.kind != "none":
            out["output"] = self.output.to_dict()
        return out


def as_workload_spec(workload) -> WorkloadSpec:
    """Coerce a figure-style workload (name / profile / spec) to a spec."""
    if isinstance(workload, WorkloadSpec):
        return workload
    if isinstance(workload, WorkloadProfile):
        return WorkloadSpec(base=workload.name, profile=workload)
    return WorkloadSpec(base=str(workload))


# ---------------------------------------------------------------------------
# Parsing (strict)
# ---------------------------------------------------------------------------


def _parse_config(payload, where: str) -> ConfigSpec:
    if not isinstance(payload, dict):
        raise CampaignError(f"{where}: config entries must be mappings")
    _check_keys(
        payload,
        ("name", "mode", "detection", "predictor", "forwarding",
         "latency_threshold", "consistency", "params", "row"),
        where,
    )
    name = str(_require(payload, "name", where))
    mode = str(_require(payload, "mode", where))
    try:
        AtomicMode.from_name(mode)
    except ValueError as exc:
        raise CampaignError(f"{where}: {exc}") from None
    detection = payload.get("detection")
    if detection is not None:
        try:
            DetectionMode(detection)
        except ValueError:
            raise CampaignError(
                f"{where}: unknown detection {detection!r}; valid:"
                f" {', '.join(d.value for d in DetectionMode)}"
            ) from None
    predictor = payload.get("predictor")
    if predictor is not None:
        try:
            PredictorKind(predictor)
        except ValueError:
            raise CampaignError(
                f"{where}: unknown predictor {predictor!r}; valid:"
                f" {', '.join(p.value for p in PredictorKind)}"
            ) from None
    consistency = payload.get("consistency")
    if consistency is not None:
        consistency = str(consistency)
        try:
            ConsistencyKind.from_name(consistency)
        except ValueError as exc:
            raise CampaignError(f"{where}: {exc}") from None
    forwarding = bool(payload.get("forwarding", False))
    threshold = payload.get("latency_threshold", UNSET)
    if threshold is not UNSET and not (
        threshold is None or isinstance(threshold, int)
    ):
        raise CampaignError(
            f"{where}: latency_threshold must be an integer or null"
        )
    params = _parse_overrides(
        payload.get("params", {}), _PARAM_FIELDS, f"{where}.params"
    )
    row = _parse_overrides(payload.get("row", {}), _ROW_FIELDS, f"{where}.row")
    return ConfigSpec(
        name=name,
        mode=mode,
        detection=detection,
        predictor=predictor,
        forwarding=forwarding,
        latency_threshold=threshold,
        consistency=consistency,
        params=params,
        row=row,
    )


def _parse_overrides(payload, valid: frozenset, where: str) -> dict:
    if not isinstance(payload, dict):
        raise CampaignError(f"{where}: overrides must be a mapping")
    unknown = sorted(set(payload) - valid)
    if unknown:
        raise CampaignError(
            f"{where}: unknown override field(s) {', '.join(unknown)}"
        )
    return {key: _freeze(value) for key, value in payload.items()}


def _parse_workload(payload, where: str) -> WorkloadSpec:
    if isinstance(payload, str):
        if payload not in WORKLOADS:
            raise CampaignError(f"{where}: unknown workload {payload!r}")
        return WorkloadSpec(base=payload)
    if not isinstance(payload, dict):
        raise CampaignError(
            f"{where}: workload entries must be names or mappings"
        )
    _check_keys(payload, ("base", "name", "overrides"), where)
    base = str(_require(payload, "base", where))
    if base not in WORKLOADS:
        raise CampaignError(f"{where}: unknown workload base {base!r}")
    name = payload.get("name")
    overrides = _parse_overrides(
        payload.get("overrides", {}), _PROFILE_FIELDS, f"{where}.overrides"
    )
    return WorkloadSpec(
        base=base, name=None if name is None else str(name), overrides=overrides
    )


def _parse_grid(payload, where: str) -> GridSpec:
    if not isinstance(payload, dict):
        raise CampaignError(f"{where}: grid entries must be mappings")
    _check_keys(
        payload,
        ("workloads", "configs", "seeds", "num_threads",
         "instructions_per_thread"),
        where,
    )
    workloads = _require(payload, "workloads", where)
    configs = _require(payload, "configs", where)
    if not isinstance(workloads, list) or not workloads:
        raise CampaignError(f"{where}: workloads must be a non-empty list")
    if not isinstance(configs, list) or not configs:
        raise CampaignError(f"{where}: configs must be a non-empty list")
    seeds = payload.get("seeds")
    if seeds is not None:
        if not isinstance(seeds, list) or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in seeds
        ):
            raise CampaignError(f"{where}: seeds must be a list of integers")
        seeds = tuple(seeds)
    for key in ("num_threads", "instructions_per_thread"):
        value = payload.get(key)
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool) or value < 1
        ):
            raise CampaignError(f"{where}: {key} must be a positive integer")
    names = [
        c.get("name") if isinstance(c, dict) else None for c in configs
    ]
    dupes = sorted({n for n in names if n is not None and names.count(n) > 1})
    if dupes:
        raise CampaignError(
            f"{where}: duplicate config name(s) {', '.join(dupes)}"
        )
    return GridSpec(
        workloads=tuple(
            _parse_workload(w, f"{where}.workloads[{i}]")
            for i, w in enumerate(workloads)
        ),
        configs=tuple(
            _parse_config(c, f"{where}.configs[{i}]")
            for i, c in enumerate(configs)
        ),
        seeds=seeds,
        num_threads=payload.get("num_threads"),
        instructions_per_thread=payload.get("instructions_per_thread"),
    )


def _parse_output(payload, where: str) -> OutputSpec:
    if not isinstance(payload, dict):
        raise CampaignError(f"{where}: output must be a mapping")
    _check_keys(payload, ("kind", "id"), where)
    kind = str(payload.get("kind", "none"))
    if kind not in OUTPUT_KINDS:
        raise CampaignError(
            f"{where}: unknown output kind {kind!r}; valid:"
            f" {', '.join(OUTPUT_KINDS)}"
        )
    out_id = payload.get("id")
    if kind != "none" and out_id is None:
        raise CampaignError(f"{where}: output kind {kind!r} requires an id")
    return OutputSpec(kind=kind, id=None if out_id is None else str(out_id))


def _validate_scale_name(name: str, where: str) -> None:
    # Lazy import: repro.analysis.figures imports this package, so the
    # scale registry must not be pulled in at module-import time.
    from repro.analysis.runner import scale_by_name

    try:
        scale_by_name(name)
    except ValueError as exc:
        raise CampaignError(f"{where}: {exc}") from None


def parse_campaign(payload, where: str = "<campaign>") -> Campaign:
    """Validate a decoded YAML/JSON document into a :class:`Campaign`."""
    if not isinstance(payload, dict):
        raise CampaignError(f"{where}: campaign spec must be a mapping")
    version = _require(payload, "campaign", where)
    if version != CAMPAIGN_SCHEMA_VERSION:
        raise CampaignError(
            f"{where}: unsupported campaign schema version {version!r}"
            f" (this build speaks version {CAMPAIGN_SCHEMA_VERSION})"
        )
    _check_keys(
        payload,
        ("campaign", "name", "description", "kind", "scale", "base",
         "workloads", "configs", "seeds", "num_threads",
         "instructions_per_thread", "grids", "machines", "ops", "variants",
         "iterations", "programs", "models", "output"),
        where,
    )
    name = str(_require(payload, "name", where))
    kind = str(payload.get("kind", "grid"))
    if kind not in ("grid", "microbench", "litmus"):
        raise CampaignError(
            f"{where}: unknown campaign kind {kind!r}"
            " (grid, microbench or litmus)"
        )
    scale = payload.get("scale")
    if scale is not None:
        scale = str(scale)
        _validate_scale_name(scale, where)
    base = str(payload.get("base", "scale"))
    if base not in BASE_PRESETS:
        raise CampaignError(
            f"{where}: unknown base {base!r}; valid: {', '.join(BASE_PRESETS)}"
        )
    output = _parse_output(payload.get("output", {"kind": "none"}), f"{where}.output")

    if kind == "microbench":
        return _parse_microbench(payload, where, name, scale, base, output)
    if kind == "litmus":
        return _parse_litmus(payload, where, name, scale, base, output)

    for key in ("machines", "ops", "variants", "iterations"):
        if key in payload:
            raise CampaignError(
                f"{where}: {key} is only valid for kind: microbench"
            )
    for key in ("programs", "models"):
        if key in payload:
            raise CampaignError(
                f"{where}: {key} is only valid for kind: litmus"
            )
    sugar_keys = (
        "workloads", "configs", "seeds", "num_threads",
        "instructions_per_thread",
    )
    has_sugar = any(k in payload for k in sugar_keys)
    if "grids" in payload and has_sugar:
        raise CampaignError(
            f"{where}: use either top-level workloads/configs or grids:,"
            " not both"
        )
    if "grids" in payload:
        grids_payload = payload["grids"]
        if not isinstance(grids_payload, list) or not grids_payload:
            raise CampaignError(f"{where}: grids must be a non-empty list")
        grids = tuple(
            _parse_grid(g, f"{where}.grids[{i}]")
            for i, g in enumerate(grids_payload)
        )
    elif has_sugar:
        grids = (
            _parse_grid(
                {k: payload[k] for k in sugar_keys if k in payload}, where
            ),
        )
    else:
        raise CampaignError(
            f"{where}: a grid campaign needs workloads/configs or grids:"
        )
    return Campaign(
        name=name,
        description=str(payload.get("description", "")),
        kind="grid",
        scale=scale,
        base=base,
        grids=grids,
        output=output,
    )


def _parse_litmus(
    payload: dict, where: str, name: str, scale, base: str, output: OutputSpec
) -> Campaign:
    from repro.workloads.litmus_oracle import LITMUS_TESTS

    for key in ("grids", "workloads", "configs", "seeds", "num_threads",
                "instructions_per_thread", "machines", "ops", "variants",
                "iterations"):
        if key in payload:
            raise CampaignError(
                f"{where}: {key} is not valid for kind: litmus"
            )
    programs = tuple(
        str(p) for p in payload.get("programs", sorted(LITMUS_TESTS))
    )
    for program in programs:
        if program not in LITMUS_TESTS:
            raise CampaignError(
                f"{where}: unknown litmus program {program!r}; valid:"
                f" {', '.join(sorted(LITMUS_TESTS))}"
            )
    models = tuple(
        str(m) for m in payload.get(
            "models", [k.value for k in ConsistencyKind]
        )
    )
    for model in models:
        try:
            ConsistencyKind.from_name(model)
        except ValueError as exc:
            raise CampaignError(f"{where}: {exc}") from None
    if not programs or not models:
        raise CampaignError(f"{where}: programs/models must be non-empty")
    return Campaign(
        name=name,
        description=str(payload.get("description", "")),
        kind="litmus",
        scale=scale,
        base=base,
        programs=programs,
        models=models,
        output=output,
    )


def _parse_microbench(
    payload: dict, where: str, name: str, scale, base: str, output: OutputSpec
) -> Campaign:
    for key in ("grids", "workloads", "configs", "seeds", "num_threads",
                "instructions_per_thread", "programs", "models"):
        if key in payload:
            raise CampaignError(
                f"{where}: {key} is not valid for kind: microbench"
            )
    machines = tuple(str(m) for m in _require(payload, "machines", where))
    for machine in machines:
        if machine not in MACHINES:
            raise CampaignError(
                f"{where}: unknown machine {machine!r}; valid:"
                f" {', '.join(MACHINES)}"
            )
    ops = tuple(str(op) for op in _require(payload, "ops", where))
    for op in ops:
        try:
            AtomicOp(op)
        except ValueError:
            raise CampaignError(
                f"{where}: unknown op {op!r}; valid:"
                f" {', '.join(o.value for o in AtomicOp)}"
            ) from None
    variants = tuple(str(v) for v in _require(payload, "variants", where))
    for variant in variants:
        if variant not in MICROBENCH_VARIANTS:
            raise CampaignError(
                f"{where}: unknown variant {variant!r}; valid:"
                f" {', '.join(MICROBENCH_VARIANTS)}"
            )
    iterations = payload.get("iterations")
    if isinstance(iterations, dict):
        for key, value in iterations.items():
            _validate_scale_name(str(key), f"{where}.iterations")
            if not isinstance(value, int) or isinstance(value, bool):
                raise CampaignError(
                    f"{where}.iterations: {key} must map to an integer"
                )
    elif iterations is not None and (
        not isinstance(iterations, int) or isinstance(iterations, bool)
    ):
        raise CampaignError(
            f"{where}: iterations must be an integer or a per-scale mapping"
        )
    if not machines or not ops or not variants:
        raise CampaignError(
            f"{where}: machines/ops/variants must be non-empty"
        )
    return Campaign(
        name=name,
        description=str(payload.get("description", "")),
        kind="microbench",
        scale=scale,
        base=base,
        machines=machines,
        ops=ops,
        variants=variants,
        iterations=iterations,
        output=output,
    )


# ---------------------------------------------------------------------------
# Load / dump
# ---------------------------------------------------------------------------


def _decode(text: str, where: str):
    if _yaml is not None:
        try:
            return _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise CampaignError(f"{where}: invalid YAML: {exc}") from None
    try:
        return json.loads(text)
    except ValueError as exc:
        raise CampaignError(
            f"{where}: invalid JSON: {exc} (pyyaml not installed, so only"
            " JSON campaign specs can be read)"
        ) from None


def loads_campaign(text: str, where: str = "<campaign>") -> Campaign:
    return parse_campaign(_decode(text, where), where)


def load_campaign(path: str | os.PathLike) -> Campaign:
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign spec {path}: {exc}") from None
    return loads_campaign(text, where=str(path))


def dump_campaign(campaign: Campaign, path: str | os.PathLike | None = None) -> str:
    """Serialize a campaign canonically (YAML when available, else JSON)."""
    payload = campaign.to_dict()
    if _yaml is not None:
        text = _yaml.safe_dump(payload, sort_keys=False, default_flow_style=False)
    else:
        text = json.dumps(payload, indent=2) + "\n"
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def default_campaign_dir() -> pathlib.Path:
    """``$REPRO_CAMPAIGN_DIR``, else the repo's committed ``campaigns/``."""
    env = os.environ.get("REPRO_CAMPAIGN_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path(__file__).resolve().parents[3] / "campaigns"


def load_named_campaign(name: str) -> Campaign:
    """Load a committed spec by family name (``fig1`` -> ``campaigns/fig1.yaml``)."""
    return load_campaign(default_campaign_dir() / f"{name}.yaml")
