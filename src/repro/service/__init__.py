"""Campaign service layer: declarative sweeps behind ``repro serve``.

The campaign — not the single run — is the first-class experiment object.
This package provides:

* :mod:`repro.service.schema` — the versioned declarative campaign format
  (YAML/JSON) with strict validation and round-trip dump/load;
* :mod:`repro.service.planner` — expansion of a campaign into the
  deduplicated :class:`~repro.analysis.parallel.RunSpec` grid (the one
  grid-expansion helper shared by figures, sweep, validate and the
  service);
* :mod:`repro.service.fabric` — the shard pool that executes submitted
  campaigns through a shared :class:`~repro.analysis.parallel.Runner`,
  persists campaign state, and resumes half-done campaigns after a
  restart purely from cache state;
* :mod:`repro.service.http` — the stdlib-asyncio HTTP/1.1 surface
  started by ``repro serve`` (submit/status/results/NDJSON event
  streams);
* :mod:`repro.service.client` — the urllib client behind
  ``repro client`` and ``repro campaign run --remote``.

Layer contract (enforced by ``arch_lint``): the service may import
``repro.analysis`` but never ``repro.core``/``repro.memory``/``repro.sim``
directly — all simulation goes through the Runner.
"""

from repro.service.schema import (
    Campaign,
    CampaignError,
    ConfigSpec,
    GridSpec,
    OutputSpec,
    WorkloadSpec,
    default_campaign_dir,
    dump_campaign,
    load_campaign,
    loads_campaign,
)
from repro.service.planner import (
    CampaignCell,
    LitmusJob,
    campaign_config_map,
    campaign_id,
    campaign_scale,
    expand_campaign,
    expand_litmus,
    expand_microbench,
    iter_cells,
)
from repro.service.fabric import CampaignRun, ShardPool
from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "Campaign",
    "CampaignCell",
    "CampaignError",
    "CampaignRun",
    "ConfigSpec",
    "GridSpec",
    "LitmusJob",
    "OutputSpec",
    "ServiceClient",
    "ServiceError",
    "ShardPool",
    "WorkloadSpec",
    "campaign_config_map",
    "campaign_id",
    "campaign_scale",
    "default_campaign_dir",
    "dump_campaign",
    "expand_campaign",
    "expand_litmus",
    "expand_microbench",
    "iter_cells",
    "load_campaign",
    "loads_campaign",
]
