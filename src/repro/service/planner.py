"""Campaign expansion: from declarative spec to deduplicated RunSpec grid.

This is the *one* grid-expansion helper in the tree — figures, ablations,
``repro sweep``, ``repro campaign run``, ``repro serve`` and the check
gate all turn campaign axes into concrete
:class:`~repro.analysis.parallel.RunSpec` jobs here, so "the committed
spec file and the figure function expand to the same grid" is true by
construction, not by parallel maintenance.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.parallel import RunSpec
from repro.analysis.runner import (
    ExperimentScale,
    base_params,
    config,
    default_scale,
    scale_by_name,
)
from repro.common.params import (
    DetectionMode,
    PredictorKind,
    SystemParams,
)
from repro.common.schema import CAMPAIGN_SCHEMA_VERSION
from repro.isa.instructions import AtomicOp
from repro.service.schema import (
    UNSET,
    Campaign,
    CampaignError,
    ConfigSpec,
    GridSpec,
    WorkloadSpec,
)
from repro.workloads.profiles import WorkloadProfile, get_profile


@dataclass(frozen=True)
class CampaignCell:
    """One fully resolved grid point, with its axis labels kept around."""

    grid_index: int
    workload_index: int
    workload: str | WorkloadProfile  # what runner.run_seeds/... accept
    config_name: str
    seed: int
    spec: RunSpec


@dataclass(frozen=True)
class MicrobenchJob:
    """One resolved Fig. 2 microbenchmark point."""

    machine: str
    op: AtomicOp
    variant: str
    iterations: int


@dataclass(frozen=True)
class LitmusJob:
    """One resolved litmus sweep point: program × model × padding args."""

    program: str
    model: str
    pads: tuple[int, ...]


# ---------------------------------------------------------------------------
# Axis resolution
# ---------------------------------------------------------------------------


def campaign_scale(
    campaign: Campaign, scale: ExperimentScale | str | None = None
) -> ExperimentScale:
    """An explicit scale wins; else the spec's ``scale:``; else the default."""
    if isinstance(scale, ExperimentScale):
        return scale
    if scale is not None:
        return scale_by_name(scale)
    if campaign.scale is not None:
        return scale_by_name(campaign.scale)
    return default_scale()


def campaign_base_params(
    campaign: Campaign, scale: ExperimentScale
) -> SystemParams:
    if campaign.base == "scale":
        return base_params(scale)
    factory = {
        "quick": SystemParams.quick,
        "small": SystemParams.small,
        "paper": SystemParams.paper,
    }[campaign.base]
    return factory()


def resolve_workload(spec: WorkloadSpec) -> str | WorkloadProfile:
    """A plain name stays a name (so RunSpec identity matches figure code);
    renamed/overridden entries become concrete profiles."""
    if spec.profile is not None:
        return spec.profile
    if spec.name is None and not spec.overrides:
        return spec.base
    overrides = dict(spec.overrides)
    if spec.name is not None:
        overrides["name"] = spec.name
    try:
        return get_profile(spec.base).with_overrides(**overrides)
    except (TypeError, ValueError) as exc:
        raise CampaignError(
            f"workload {spec.label!r}: bad override: {exc}"
        ) from None


def resolve_config(spec: ConfigSpec, base: SystemParams) -> SystemParams:
    """Build the SystemParams a ConfigSpec names, via the shared builder."""
    detection = (
        DetectionMode(spec.detection) if spec.detection is not None else None
    )
    predictor = (
        PredictorKind(spec.predictor) if spec.predictor is not None else None
    )
    if spec.params:
        try:
            base = dataclasses.replace(base, **spec.params)
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"config {spec.name!r}: bad params override: {exc}"
            ) from None
    if spec.consistency is not None:
        try:
            base = base.with_consistency_model(spec.consistency)
        except ValueError as exc:
            raise CampaignError(f"config {spec.name!r}: {exc}") from None
    params = config(
        base,
        spec.mode,
        detection,
        predictor,
        forwarding=spec.forwarding,
        latency_threshold=spec.latency_threshold
        if spec.latency_threshold != UNSET
        else "default",
    )
    if spec.row:
        try:
            params = dataclasses.replace(
                params, row=dataclasses.replace(params.row, **spec.row)
            )
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"config {spec.name!r}: bad row override: {exc}"
            ) from None
    try:
        params.validate()
    except ValueError as exc:
        raise CampaignError(f"config {spec.name!r}: {exc}") from None
    return params


def _grid_seeds(grid: GridSpec, scale: ExperimentScale) -> tuple[int, ...]:
    return grid.seeds if grid.seeds is not None else scale.seeds


def _grid_threads(grid: GridSpec, scale: ExperimentScale) -> int:
    return grid.num_threads if grid.num_threads is not None else scale.num_threads


def _grid_instructions(grid: GridSpec, scale: ExperimentScale) -> int:
    if grid.instructions_per_thread is not None:
        return grid.instructions_per_thread
    return scale.instructions_per_thread


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------


def iter_cells(
    campaign: Campaign, scale: ExperimentScale | str | None = None
) -> Iterator[CampaignCell]:
    """Every grid point (duplicates included), in deterministic
    workload-major, config-minor, seed-innermost order — the same order
    ``RunSpec.grid`` used."""
    if campaign.kind != "grid":
        raise CampaignError(
            f"campaign {campaign.name!r} is kind={campaign.kind!r},"
            " not a RunSpec grid"
        )
    resolved_scale = campaign_scale(campaign, scale)
    base = campaign_base_params(campaign, resolved_scale)
    for grid_index, grid in enumerate(campaign.grids):
        seeds = _grid_seeds(grid, resolved_scale)
        threads = _grid_threads(grid, resolved_scale)
        instructions = _grid_instructions(grid, resolved_scale)
        configs = [(c.name, resolve_config(c, base)) for c in grid.configs]
        for workload_index, wspec in enumerate(grid.workloads):
            workload = resolve_workload(wspec)
            profile = (
                get_profile(workload) if isinstance(workload, str) else workload
            )
            for config_name, params in configs:
                for seed in seeds:
                    yield CampaignCell(
                        grid_index=grid_index,
                        workload_index=workload_index,
                        workload=workload,
                        config_name=config_name,
                        seed=seed,
                        spec=RunSpec(
                            workload=profile,
                            params=params,
                            num_threads=min(threads, params.num_cores),
                            instructions_per_thread=instructions,
                            seed=seed,
                        ),
                    )


def expand_campaign(
    campaign: Campaign, scale: ExperimentScale | str | None = None
) -> list[RunSpec]:
    """The campaign's unique job list, input order preserved."""
    seen: set[RunSpec] = set()
    specs: list[RunSpec] = []
    for cell in iter_cells(campaign, scale):
        if cell.spec not in seen:
            seen.add(cell.spec)
            specs.append(cell.spec)
    return specs


def campaign_config_map(
    campaign: Campaign,
    scale: ExperimentScale | str | None = None,
    grid: int = 0,
) -> dict[str, SystemParams]:
    """``{config name -> resolved SystemParams}`` for one grid, in spec
    order — what figure readers use to label columns."""
    resolved_scale = campaign_scale(campaign, scale)
    base = campaign_base_params(campaign, resolved_scale)
    return {
        c.name: resolve_config(c, base) for c in campaign.grids[grid].configs
    }


def campaign_workloads(
    campaign: Campaign, grid: int = 0
) -> list[str | WorkloadProfile]:
    """The resolved workload axis of one grid (names or profiles)."""
    return [resolve_workload(w) for w in campaign.grids[grid].workloads]


def expand_microbench(
    campaign: Campaign, scale: ExperimentScale | str | None = None
) -> list[MicrobenchJob]:
    """The (machine × op × variant) jobs of a ``kind: microbench`` campaign."""
    if campaign.kind != "microbench":
        raise CampaignError(
            f"campaign {campaign.name!r} is kind={campaign.kind!r},"
            " not a microbenchmark"
        )
    resolved_scale = campaign_scale(campaign, scale)
    iterations = campaign.iterations
    if isinstance(iterations, dict):
        try:
            iterations = iterations[resolved_scale.name]
        except KeyError:
            raise CampaignError(
                f"campaign {campaign.name!r}: no iterations entry for scale"
                f" {resolved_scale.name!r}"
            ) from None
    if iterations is None:
        iterations = resolved_scale.instructions_per_thread
    return [
        MicrobenchJob(
            machine=machine,
            op=AtomicOp(op),
            variant=variant,
            iterations=int(iterations),
        )
        for machine in campaign.machines
        for op in campaign.ops
        for variant in campaign.variants
    ]


def expand_litmus(campaign: Campaign) -> list[LitmusJob]:
    """The (program × model × pad-set) jobs of a ``kind: litmus``
    campaign — what :mod:`repro.analysis.litmuscheck` sweeps."""
    from repro.workloads.litmus_oracle import LITMUS_TESTS

    if campaign.kind != "litmus":
        raise CampaignError(
            f"campaign {campaign.name!r} is kind={campaign.kind!r},"
            " not a litmus sweep"
        )
    jobs = []
    for program in campaign.programs:
        try:
            test = LITMUS_TESTS[program]
        except KeyError:
            raise CampaignError(
                f"campaign {campaign.name!r}: unknown litmus program"
                f" {program!r}"
            ) from None
        for model in campaign.models:
            for pads in test.pad_sets:
                jobs.append(
                    LitmusJob(program=program, model=model, pads=tuple(pads))
                )
    return jobs


# ---------------------------------------------------------------------------
# Identity
# ---------------------------------------------------------------------------


def campaign_id(
    campaign: Campaign, scale: ExperimentScale | str | None = None
) -> str:
    """Content address of (campaign, resolved scale) — the service's
    dedup/resume key.  Same spec + same scale => same id, so resubmitting
    a campaign is idempotent and a restarted server recognizes its
    half-done work."""
    resolved_scale = campaign_scale(campaign, scale)
    payload = json.dumps(
        {
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "scale": resolved_scale.name,
            "campaign": campaign.to_dict(),
        },
        sort_keys=True,
        allow_nan=False,
    )
    return hashlib.sha256(payload.encode()).hexdigest()
