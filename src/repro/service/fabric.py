"""The shard pool: campaign execution, dedup, persistence and resume.

A :class:`ShardPool` owns one shared
:class:`~repro.analysis.parallel.Runner` and a dispatcher thread that
drains submitted campaigns FIFO.  Sharding happens inside the Runner
(``jobs=N`` worker processes with crash-retry); the pool's job is the
campaign lifecycle:

* **dedup** — a campaign's id is the content hash of (spec, scale), so
  resubmitting is idempotent, and overlapping campaigns share cells
  through the Runner's memo/disk cache (each unique ``RunSpec`` simulates
  at most once per cache);
* **streaming** — every completed cell appends an NDJSON-able event that
  the HTTP layer tails to clients;
* **restart survival** — campaign state is persisted as one small JSON
  file per campaign; on restart :meth:`resume_pending` requeues anything
  not finished, and the Runner's disk cache turns the already-completed
  cells into hits, so only the missing cells simulate.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
from dataclasses import dataclass, field

from repro.analysis.parallel import Runner, RunMetrics, RunSpec
from repro.analysis.runner import ExperimentScale
from repro.service.planner import (
    CampaignCell,
    campaign_id,
    campaign_scale,
    iter_cells,
)
from repro.service.schema import Campaign, CampaignError, parse_campaign

#: Campaign lifecycle states.  "queued" and "running" are the resumable
#: ones; a restarted pool requeues them.
STATES = ("queued", "running", "done", "failed")


@dataclass
class CampaignRun:
    """One submitted campaign's live state inside the pool."""

    id: str
    campaign: Campaign
    scale: ExperimentScale
    cells: list[CampaignCell]
    specs: list[RunSpec]  # unique, submission order
    state: str = "queued"
    completed: int = 0
    simulated: int = 0
    cache_hits: int = 0
    error: str | None = None
    events: list[dict] = field(default_factory=list)
    metrics: dict[RunSpec, RunMetrics] = field(default_factory=dict)
    _finished: threading.Event = field(default_factory=threading.Event)

    @property
    def total(self) -> int:
        return len(self.specs)

    def status(self) -> dict:
        out = {
            "id": self.id,
            "name": self.campaign.name,
            "scale": self.scale.name,
            "state": self.state,
            "total": self.total,
            "completed": self.completed,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.campaign.output.kind != "none":
            out["output"] = self.campaign.output.to_dict()
        return out

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the campaign reaches done/failed (True) or timeout."""
        return self._finished.wait(timeout)

    def result_rows(self) -> list[dict]:
        """One row per grid cell (labels + metrics), for clients."""
        if self.state != "done":
            raise CampaignError(
                f"campaign {self.id[:12]} is {self.state}, results are only"
                " available once it is done"
            )
        rows = []
        for cell in self.cells:
            metrics = self.metrics[cell.spec]
            rows.append(
                {
                    "grid": cell.grid_index,
                    "workload": metrics.workload,
                    "config": cell.config_name,
                    "seed": cell.seed,
                    "spec": cell.spec.content_hash(),
                    "metrics": metrics.to_dict(),
                }
            )
        return rows


class ShardPool:
    """Serial campaign dispatcher over one shared Runner.

    Campaigns queue FIFO and each expands into a Runner batch; within a
    campaign the Runner fans cells across its worker processes.  All
    public methods are thread-safe (the HTTP layer calls them from the
    event loop while the dispatcher thread executes).
    """

    def __init__(
        self,
        runner: Runner,
        state_dir: str | os.PathLike | None = None,
    ) -> None:
        self.runner = runner
        self.state_dir = (
            pathlib.Path(state_dir) if state_dir is not None else None
        )
        self._runs: dict[str, CampaignRun] = {}
        self._queue: list[CampaignRun] = []
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._stop = False
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop = False
        self._thread = threading.Thread(
            target=self._loop, name="shard-pool", daemon=True
        )
        self._thread.start()

    def stop(self, wait: bool = True) -> None:
        """Stop after the in-flight cell; unfinished campaigns stay
        "running"/"queued" on disk for the next pool to resume."""
        with self._wake:
            self._stop = True
            self._wake.notify_all()
        if wait and self._thread is not None:
            self._thread.join()
        self._thread = None

    # -- submission ----------------------------------------------------

    def submit(
        self, campaign: Campaign, scale: ExperimentScale | str | None = None
    ) -> CampaignRun:
        """Queue a campaign; idempotent on its content id."""
        if campaign.kind != "grid":
            raise CampaignError(
                f"campaign {campaign.name!r} is kind={campaign.kind!r};"
                " the service executes RunSpec grids"
                " (run microbench campaigns offline: repro campaign run)"
            )
        resolved_scale = campaign_scale(campaign, scale)
        cid = campaign_id(campaign, resolved_scale)
        cells = list(iter_cells(campaign, resolved_scale))
        with self._wake:
            existing = self._runs.get(cid)
            if existing is not None and existing.state != "failed":
                return existing
            seen: set[RunSpec] = set()
            specs = []
            for cell in cells:
                if cell.spec not in seen:
                    seen.add(cell.spec)
                    specs.append(cell.spec)
            run = CampaignRun(
                id=cid,
                campaign=campaign,
                scale=resolved_scale,
                cells=cells,
                specs=specs,
            )
            run.events.append(
                {"event": "submitted", "id": cid, "total": run.total}
            )
            self._runs[cid] = run
            self._queue.append(run)
            self._wake.notify_all()
        self._persist(run)
        return run

    def resume_pending(self) -> list[CampaignRun]:
        """Requeue persisted campaigns that never reached done/failed.

        Completed cells are already in the result cache, so a resumed
        campaign re-simulates only what is missing.
        """
        if self.state_dir is None or not self.state_dir.is_dir():
            return []
        resumed = []
        for path in sorted(self.state_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                state = payload["state"]
                if state in ("done", "failed"):
                    continue
                campaign = parse_campaign(payload["campaign"], where=str(path))
                resumed.append(self.submit(campaign, payload["scale"]))
            except (OSError, ValueError, KeyError):
                # A corrupt state file must not wedge the whole service.
                try:
                    path.unlink()
                except OSError:
                    pass
        return resumed

    # -- queries -------------------------------------------------------

    def get(self, cid: str) -> CampaignRun | None:
        with self._lock:
            return self._runs.get(cid)

    def list_runs(self) -> list[CampaignRun]:
        with self._lock:
            return list(self._runs.values())

    def events_since(self, run: CampaignRun, index: int) -> list[dict]:
        with self._lock:
            return run.events[index:]

    # -- execution -----------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stop:
                    self._wake.wait(timeout=0.2)
                if self._stop:
                    return
                run = self._queue.pop(0)
                run.state = "running"
                run.events.append({"event": "running", "id": run.id})
            self._persist(run)
            if not self._execute(run):
                return  # stop requested mid-campaign

    def _execute(self, run: CampaignRun) -> bool:
        """Run one campaign; False means a stop interrupted it."""
        stream = self.runner.run_stream(run.specs)
        try:
            for spec, metrics, source in stream:
                self._record(run, spec, metrics, source)
                if self._stop:
                    # Leave the persisted state "running": the next pool's
                    # resume_pending requeues it and the cells recorded so
                    # far come back as disk hits.
                    return False
        except Exception as exc:  # a cell failed after retries
            with self._lock:
                run.state = "failed"
                run.error = f"{type(exc).__name__}: {exc}"
                run.events.append(
                    {"event": "failed", "id": run.id, "error": run.error}
                )
            self._persist(run)
            run._finished.set()
            return True
        finally:
            stream.close()
        with self._lock:
            run.state = "done"
            run.events.append(
                {
                    "event": "done",
                    "id": run.id,
                    "total": run.total,
                    "simulated": run.simulated,
                    "cache_hits": run.cache_hits,
                }
            )
        self._persist(run)
        run._finished.set()
        return True

    def _record(
        self, run: CampaignRun, spec: RunSpec, metrics: RunMetrics, source: str
    ) -> None:
        with self._lock:
            run.completed += 1
            if source == "sim":
                run.simulated += 1
            else:
                run.cache_hits += 1
            run.metrics[spec] = metrics
            run.events.append(
                {
                    "event": "result",
                    "id": run.id,
                    "workload": metrics.workload,
                    "seed": spec.seed,
                    "source": source,
                    "cycles": metrics.cycles,
                    "completed": run.completed,
                    "total": run.total,
                }
            )

    # -- persistence ---------------------------------------------------

    def _persist(self, run: CampaignRun) -> None:
        if self.state_dir is None:
            return
        try:
            payload = json.dumps(
                {
                    "id": run.id,
                    "state": run.state,
                    "scale": run.scale.name,
                    "completed": run.completed,
                    "simulated": run.simulated,
                    "campaign": run.campaign.to_dict(),
                },
                sort_keys=True,
                allow_nan=False,
            )
        except CampaignError:
            return  # in-memory-profile campaigns can't be persisted
        self.state_dir.mkdir(parents=True, exist_ok=True)
        path = self.state_dir / f"{run.id}.json"
        # Atomic publish, same discipline as the result cache.
        fd, tmp = tempfile.mkstemp(dir=self.state_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
