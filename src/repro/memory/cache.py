"""Set-associative cache arrays with pluggable replacement and line pinning.

These arrays track *presence* (which lines live in L1D/L2/L3 and where).
Coherence permissions live in the per-core controller; architectural values
live in the global memory image.  Pinning supports cache locking: a line
locked by the Atomic Queue may never be chosen as a victim (Sec. II-B —
"stall ... a potential eviction of this cacheline from the L1D").

Replacement policies (``CacheParams.replacement``):

* ``LRU``    — classic least-recently-used (the paper's configuration).
* ``FIFO``   — insertion order, no touch refresh.
* ``RANDOM`` — deterministic pseudo-random victim (xorshift), useful for
  replacement-sensitivity studies.
* ``SRRIP``  — static re-reference interval prediction (Jaleel et al.,
  ISCA 2010) with 2-bit RRPVs.
"""

from __future__ import annotations

from repro.common.params import CacheParams, ReplacementPolicy

_SRRIP_MAX = 3  # 2-bit RRPV
_SRRIP_INSERT = 2  # long re-reference prediction on insert


class SetAssocCache:
    """A set-associative cache keyed by cacheline index."""

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self.num_sets = params.num_sets
        self.ways = params.ways
        self.policy = params.replacement
        # Per-set mapping line -> policy metadata (stamp or RRPV).
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self._pinned: set[int] = set()
        self._rng_state = 0x9E3779B9 ^ hash(name) & 0xFFFFFFFF or 1

    # ------------------------------------------------------------------

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    def __contains__(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]

    def touch(self, line: int) -> bool:
        """Record a hit (refresh recency); returns False if absent."""
        s = self._sets[line % self.num_sets]
        if line not in s:
            return False
        if self.policy is ReplacementPolicy.LRU:
            self._stamp += 1
            s[line] = self._stamp
        elif self.policy is ReplacementPolicy.SRRIP:
            s[line] = 0  # near-immediate re-reference
        # FIFO and RANDOM ignore hits.
        return True

    def pin(self, line: int) -> None:
        self._pinned.add(line)

    def unpin(self, line: int) -> None:
        self._pinned.discard(line)

    def is_pinned(self, line: int) -> bool:
        return line in self._pinned

    def insert(self, line: int) -> int | None:
        """Insert a line, returning the evicted victim line (or None).

        Raises ``RuntimeError`` if every way of the target set is pinned and
        the set is full: callers must check :meth:`can_insert` first when the
        line being inserted could conflict with locked lines.
        """
        s = self._sets[line % self.num_sets]
        if line in s:
            self.touch(line)
            return None
        victim = None
        if len(s) >= self.ways:
            victim = self._pick_victim(s)
            if victim is None:
                raise RuntimeError(
                    f"{self.name}: all ways pinned in set {line % self.num_sets}"
                )
            del s[victim]
        if self.policy is ReplacementPolicy.SRRIP:
            s[line] = _SRRIP_INSERT
        else:
            self._stamp += 1
            s[line] = self._stamp
        return victim

    def can_insert(self, line: int) -> bool:
        """True if an insert would succeed (a non-pinned victim exists)."""
        s = self._sets[line % self.num_sets]
        if line in s or len(s) < self.ways:
            return True
        return any(candidate not in self._pinned for candidate in s)

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def _pick_victim(self, s: dict[int, int]) -> int | None:
        candidates = [line for line in s if line not in self._pinned]
        if not candidates:
            return None
        if self.policy is ReplacementPolicy.RANDOM:
            return candidates[self._next_random() % len(candidates)]
        if self.policy is ReplacementPolicy.SRRIP:
            return self._srrip_victim(s, candidates)
        # LRU and FIFO: smallest stamp (oldest use / oldest insertion).
        victim = candidates[0]
        victim_stamp = s[victim]
        for candidate in candidates[1:]:
            if s[candidate] < victim_stamp:
                victim = candidate
                victim_stamp = s[candidate]
        return victim

    def _srrip_victim(self, s: dict[int, int], candidates: list[int]) -> int:
        # Age every unpinned line until one reaches the distant-future RRPV.
        while True:
            for candidate in candidates:
                if s[candidate] >= _SRRIP_MAX:
                    return candidate
            for candidate in candidates:
                s[candidate] += 1

    def _next_random(self) -> int:
        # xorshift32: deterministic, seeded by the cache name.
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rng_state = x
        return x

    # ------------------------------------------------------------------

    def remove(self, line: int) -> bool:
        """Remove a line (e.g. on invalidation); returns True if present."""
        s = self._sets[line % self.num_sets]
        if line in s:
            del s[line]
            return True
        return False

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self) -> set[int]:
        out: set[int] = set()
        for s in self._sets:
            out.update(s)
        return out
