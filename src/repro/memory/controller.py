"""Per-core private cache controller (L1D + L2 hierarchy, MSHRs, snoops).

The controller owns the MESI permission for every line cached by its core,
tracks L1D/L2 presence for hit timing, and is where coherence meets cache
locking: external requests (Inv / FwdGetS / FwdGetX) that target a line the
Atomic Queue holds locked are *stalled* in a per-line queue until the atomic
unlocks (Sec. II-B), which is the mechanism that makes eager atomics hold up
other cores on contended lines — the phenomenon RoW exists to manage.

The core installs hooks (``is_locked``, ``on_external_blocked``,
``on_external_observed``, ``on_invalidation``) so the RoW contention
detectors and the TSO load-queue snoop ride along with the protocol events,
matching the paper's "this can be done in parallel with snooping the LQ".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.params import SystemParams
from repro.common.stats import StatGroup
from repro.memory.cache import SetAssocCache
from repro.memory.messages import Message, MsgKind
from repro.memory.prefetcher import IPStridePrefetcher

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventEngine

# Callback signature: (completion_cycle, from_private_cache, latency_cycles)
AccessCallback = Callable[[int, bool, int], None]


@dataclass
class Mshr:
    line: int
    need_excl: bool
    issued_cycle: int
    callbacks: list[AccessCallback] = field(default_factory=list)
    upgrade_waiters: list[AccessCallback] = field(default_factory=list)
    prefetch_only: bool = False


class PrivateCacheController:
    """L1D+L2 private hierarchy of one core, speaking MESI to the directory."""

    def __init__(
        self,
        core_id: int,
        params: SystemParams,
        engine: "EventEngine",
        stats: StatGroup | None = None,
    ) -> None:
        self.core_id = core_id
        self.params = params
        self.engine = engine
        self.stats = stats if stats is not None else StatGroup(f"ctrl{core_id}")
        self.l1d = SetAssocCache(params.l1d, name=f"l1d[{core_id}]")
        self.l2 = SetAssocCache(params.l2, name=f"l2[{core_id}]")
        # MESI permission per line; absent key == Invalid.
        self.state: dict[int, str] = {}
        self.mshrs: dict[int, Mshr] = {}
        self.pending_requests: deque[tuple[int, bool, AccessCallback]] = deque()
        # Evicted-dirty lines awaiting PutM-Ack; they still answer forwards.
        self.wb_buffer: set[int] = set()
        self.stalled_externals: dict[int, deque[Message]] = {}
        self.prefetcher = (
            IPStridePrefetcher(params, self) if params.enable_prefetcher else None
        )
        # Hooks installed by the owning core.
        # ``on_message`` fires before *any* delivered message is dispatched:
        # the core uses it to raise its wake flag, so a sleeping core can
        # never miss a message (the no-missed-wake invariant that makes
        # quiescence scheduling sound; see docs/performance.md).
        self.on_message: Callable[[], None] = lambda: None
        self.is_locked: Callable[[int], bool] = lambda line: False
        self.on_external_blocked: Callable[[int, Message], None] = lambda l, m: None
        self.on_external_observed: Callable[[int, Message], None] = lambda l, m: None
        self.on_invalidation: Callable[[int], None] = lambda line: None
        self.on_amo_resp: Callable[[Message], None] = lambda msg: None
        # Hot-path hoists for access(): hit latencies are immutable params,
        # and the three classification counters are bound lazily at the
        # same first-increment point as the uncached code so counter-dict
        # insertion order (serialization identity) is preserved.
        self._l1d_hit_cycles = params.l1d.hit_cycles
        self._l2_hit_cycles = params.l2.hit_cycles
        self._c_l1d_hits = None
        self._c_l2_hits = None
        self._c_l1d_misses = None

    # ------------------------------------------------------------------
    # CPU-side interface
    # ------------------------------------------------------------------

    def has_permission(self, line: int, excl: bool) -> bool:
        st = self.state.get(line)
        if st is None:
            return False
        return not excl or st in ("E", "M")

    def mark_dirty(self, line: int) -> None:
        """Silent E->M upgrade when the core writes an exclusive-clean line."""
        st = self.state.get(line)
        if st == "E":
            self.state[line] = "M"
        elif st != "M":
            raise RuntimeError(
                f"core {self.core_id}: write to line {line:#x} without ownership"
            )

    def access(
        self,
        line: int,
        excl: bool,
        cb: AccessCallback,
        pc: int | None = None,
        is_prefetch: bool = False,
    ) -> None:
        """Obtain the line with the needed permission; fire ``cb`` when done.

        Hits complete after the L1D/L2 hit latency.  Misses allocate an MSHR
        (or merge into one) and complete when the protocol delivers data.
        """
        now = self.engine.now
        if not is_prefetch and pc is not None and self.prefetcher is not None:
            self.prefetcher.observe(pc, line)
        st = self.state.get(line)
        if st is not None and (not excl or st == "E" or st == "M"):
            # Inlined has_permission; touch() doubles as the presence
            # probe so the hit path indexes each cache level only once.
            if self.l1d.touch(line):
                lat = self._l1d_hit_cycles
                ctr = self._c_l1d_hits
                if ctr is None:
                    ctr = self._c_l1d_hits = self.stats.counter("l1d_hits")
            elif self.l2.touch(line):
                self._install_l1d(line)
                lat = self._l2_hit_cycles
                ctr = self._c_l2_hits
                if ctr is None:
                    ctr = self._c_l2_hits = self.stats.counter("l2_hits")
            else:  # pragma: no cover - presence must track permission
                raise RuntimeError(
                    f"core {self.core_id}: permission without presence "
                    f"for line {line:#x}"
                )
            ctr.value += 1
            self.engine.schedule_in(lat, lambda: cb(now + lat, False, lat))
            return
        if is_prefetch and (line in self.mshrs or line in self.wb_buffer):
            return  # drop prefetch; demand stream already covers it
        if line in self.wb_buffer:
            # A PutM for this line is in flight; re-requesting before the
            # ack would confuse ownership at the directory.  Retry shortly.
            self.engine.schedule_in(
                2, lambda: self.access(line, excl, cb, is_prefetch=is_prefetch)
            )
            return
        ctr = self._c_l1d_misses
        if ctr is None:
            ctr = self._c_l1d_misses = self.stats.counter("l1d_misses")
        ctr.value += 1
        mshr = self.mshrs.get(line)
        if mshr is not None:
            if excl and not mshr.need_excl:
                # A GetS is outstanding but we now need ownership: remember
                # the waiter and issue a GetX once the GetS completes.
                mshr.upgrade_waiters.append(cb)
            else:
                mshr.callbacks.append(cb)
                if not is_prefetch:
                    mshr.prefetch_only = False
            return
        if len(self.mshrs) >= self.params.mshr_entries:
            if is_prefetch:
                return  # never queue prefetches
            self.stats.counter("mshr_full").add()
            self.pending_requests.append((line, excl, cb))
            return
        self._allocate_and_request(line, excl, cb, is_prefetch)

    def _allocate_and_request(
        self, line: int, excl: bool, cb: AccessCallback | None, is_prefetch: bool
    ) -> None:
        now = self.engine.now
        mshr = Mshr(line, excl, now, prefetch_only=is_prefetch)
        if cb is not None:
            mshr.callbacks.append(cb)
        self.mshrs[line] = mshr
        kind = MsgKind.GETX if excl else MsgKind.GETS
        bank = self.engine.network.bank_of(line)
        msg = Message(
            kind,
            line,
            src=self.core_id,
            dst=bank,
            requestor=self.core_id,
            issued_cycle=now,
        )
        self.stats.counter(f"requests_{kind.value}").add()
        self.engine.send(msg, to_directory=True)

    def amo_request(
        self,
        line: int,
        *,
        op,
        operand: int,
        expected: int | None,
        addr: int,
        issued_cycle: int,
    ) -> None:
        """Ship a far atomic to the line's home bank (Sec. "near vs far").

        The RMW executes at the directory/L3 bank; the answer comes back as
        an AMO_RESP and is delivered through the ``on_amo_resp`` hook.  The
        message is built here so the core never touches
        :mod:`repro.memory.messages` directly.
        """
        bank = self.engine.network.bank_of(line)
        msg = Message(
            MsgKind.AMO_REQ,
            line,
            src=self.core_id,
            dst=bank,
            requestor=self.core_id,
            issued_cycle=issued_cycle,
            amo_op=op,
            amo_operand=operand,
            amo_expected=expected,
            amo_addr=addr,
        )
        self.engine.send(msg, to_directory=True)

    # ------------------------------------------------------------------
    # Message handling (network-side)
    # ------------------------------------------------------------------

    def receive(self, msg: Message) -> None:
        self.on_message()
        if msg.kind in (MsgKind.DATA, MsgKind.DATA_E):
            self._on_data(msg)
        elif msg.kind is MsgKind.INV:
            self._on_inv(msg)
        elif msg.kind is MsgKind.FWD_GETS:
            self._on_fwd(msg, exclusive=False)
        elif msg.kind is MsgKind.FWD_GETX:
            self._on_fwd(msg, exclusive=True)
        elif msg.kind is MsgKind.PUTM_ACK:
            self.wb_buffer.discard(msg.line)
        elif msg.kind is MsgKind.AMO_RESP:
            self.on_amo_resp(msg)
        else:  # pragma: no cover - defensive
            raise ValueError(f"core {self.core_id} cannot handle {msg!r}")

    def _on_data(self, msg: Message) -> None:
        line = msg.line
        mshr = self.mshrs.pop(line, None)
        if mshr is None:  # pragma: no cover - defensive
            raise RuntimeError(
                f"core {self.core_id}: data for line {line:#x} without MSHR"
            )
        if mshr.need_excl:
            self.state[line] = "M"
        elif msg.kind is MsgKind.DATA_E:
            self.state[line] = "E"
        else:
            self.state[line] = "S"
        self._install(line)
        unblock = Message(
            MsgKind.UNBLOCK,
            line,
            src=self.core_id,
            dst=self.engine.network.bank_of(line),
            requestor=self.core_id,
        )
        self.engine.send(unblock, to_directory=True)
        now = self.engine.now
        latency = now - mshr.issued_cycle
        self.stats.accumulator("miss_latency").add(latency)
        if msg.from_private_cache:
            self.stats.counter("fills_from_private").add()
        for cb in mshr.callbacks:
            cb(now, msg.from_private_cache, latency)
        if mshr.upgrade_waiters:
            waiters = mshr.upgrade_waiters
            if self.has_permission(line, excl=True):
                for cb in waiters:
                    cb(now, msg.from_private_cache, latency)
            else:
                first, rest = waiters[0], waiters[1:]
                self._allocate_and_request(line, True, first, is_prefetch=False)
                for cb in rest:
                    self.mshrs[line].callbacks.append(cb)
        self._drain_pending()

    def _drain_pending(self) -> None:
        while self.pending_requests and len(self.mshrs) < self.params.mshr_entries:
            line, excl, cb = self.pending_requests.popleft()
            # The line may have arrived meanwhile; go through access() again.
            self.access(line, excl, cb)
            if line in self.mshrs and len(self.mshrs) >= self.params.mshr_entries:
                break

    def _on_inv(self, msg: Message) -> None:
        line = msg.line
        if self.is_locked(line):
            self._stall_external(line, msg)
            return
        self.on_external_observed(line, msg)
        if line in self.state:
            del self.state[line]
            self.l1d.remove(line)
            self.l2.remove(line)
            self.on_invalidation(line)
        ack = Message(
            MsgKind.INV_ACK,
            line,
            src=self.core_id,
            dst=msg.src,
            requestor=msg.requestor,
        )
        self.engine.send(ack, to_directory=True)

    def _on_fwd(self, msg: Message, exclusive: bool) -> None:
        line = msg.line
        if self.is_locked(line):
            self._stall_external(line, msg)
            return
        self.on_external_observed(line, msg)
        st = self.state.get(line)
        if st in ("E", "M"):
            if exclusive:
                del self.state[line]
                self.l1d.remove(line)
                self.l2.remove(line)
                self.on_invalidation(line)
            else:
                self.state[line] = "S"
        elif line in self.wb_buffer:
            pass  # eviction raced with the forward; serve from the buffer
        else:  # pragma: no cover - defensive
            raise RuntimeError(
                f"core {self.core_id}: forwarded {msg.kind.value} for "
                f"line {line:#x} it does not own"
            )
        data = Message(
            MsgKind.DATA_E if exclusive else MsgKind.DATA,
            line,
            src=self.core_id,
            dst=msg.requestor,
            requestor=msg.requestor,
            exclusive=exclusive,
            from_private_cache=True,
            issued_cycle=msg.issued_cycle,
        )
        self.stats.counter("cache_to_cache").add()
        self.engine.send(data, to_directory=False)

    def _stall_external(self, line: int, msg: Message) -> None:
        self.stats.counter("externals_stalled").add()
        self.stalled_externals.setdefault(line, deque()).append(msg)
        self.on_external_blocked(line, msg)

    # ------------------------------------------------------------------
    # Cache locking support
    # ------------------------------------------------------------------

    def pin(self, line: int) -> None:
        self.l1d.pin(line)
        self.l2.pin(line)

    def unpin_and_release(self, line: int) -> None:
        """Unpin a line and replay any coherence requests stalled on it."""
        self.l1d.unpin(line)
        self.l2.unpin(line)
        stalled = self.stalled_externals.pop(line, None)
        if not stalled:
            return
        # Replay in arrival order; a replayed message may stall again if a
        # later atomic has re-locked the line by the time it is processed.
        def replay() -> None:
            while stalled:
                self.receive(stalled.popleft())
                if self.is_locked(line):
                    remaining = self.stalled_externals.setdefault(line, deque())
                    while stalled:
                        remaining.append(stalled.popleft())
                    return

        self.engine.schedule_in(1, replay)

    # ------------------------------------------------------------------
    # Presence maintenance
    # ------------------------------------------------------------------

    def _install(self, line: int) -> None:
        victim = self.l2.insert(line)
        if victim is not None:
            self._evict_from_private(victim)
        self._install_l1d(line)

    def _install_l1d(self, line: int) -> None:
        if not self.l1d.can_insert(line):
            return  # every way pinned by locked atomics; serve from L2
        self.l1d.insert(line)
        # L1D victims stay in L2 (inclusive hierarchy): nothing else to do.

    def _evict_from_private(self, line: int) -> None:
        """A line left the private hierarchy entirely (L2 victim)."""
        self.l1d.remove(line)
        st = self.state.pop(line, None)
        if st in ("E", "M"):
            self.wb_buffer.add(line)
            putm = Message(
                MsgKind.PUTM,
                line,
                src=self.core_id,
                dst=self.engine.network.bank_of(line),
                requestor=self.core_id,
            )
            self.stats.counter("writebacks").add()
            self.engine.send(putm, to_directory=True)
