"""IP-stride (instruction-pointer indexed) L1D prefetcher (Table I).

Classic design: a small table indexed by load PC records the last line
touched and the last stride; two consecutive identical strides arm the
entry, after which each access prefetches ``degree`` lines ahead.
Prefetches are strictly best-effort: they never queue behind a full MSHR
file and are dropped if the line is already present or in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.params import SystemParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.controller import PrivateCacheController


@dataclass
class _StrideEntry:
    last_line: int
    stride: int = 0
    confident: bool = False


class IPStridePrefetcher:
    def __init__(self, params: SystemParams, controller: "PrivateCacheController") -> None:
        self.params = params
        self.controller = controller
        self.entries: dict[int, _StrideEntry] = {}
        self.max_entries = params.prefetcher_table_entries
        self.degree = params.prefetcher_degree
        self.issued = 0

    def observe(self, pc: int, line: int) -> None:
        entry = self.entries.get(pc)
        if entry is None:
            if len(self.entries) >= self.max_entries:
                # Simple clock-less replacement: drop an arbitrary entry.
                self.entries.pop(next(iter(self.entries)))
            self.entries[pc] = _StrideEntry(last_line=line)
            return
        stride = line - entry.last_line
        if stride == 0:
            return
        if stride == entry.stride:
            entry.confident = True
        else:
            entry.confident = False
            entry.stride = stride
        entry.last_line = line
        if not entry.confident:
            return
        for k in range(1, self.degree + 1):
            target = line + k * entry.stride
            if target < 0 or self.controller.has_permission(target, excl=False):
                continue
            self.issued += 1
            self.controller.access(
                target,
                excl=False,
                cb=lambda *_: None,
                is_prefetch=True,
            )
