"""Coherence protocol messages.

The protocol is a MESI directory protocol in the GEMS style (Sec. V of the
paper models the memory system with GEMS): requests block the directory
entry until the requestor's Unblock acknowledgment, queued requests wait in
FIFO order, and dirty data is forwarded cache-to-cache.  Responses carry the
``from_private_cache`` flag the RW+Dir contention detector keys on
(Sec. IV-C: "coherence messages commonly include the sender identifier, or
at least a bit to indicate if the response comes from private or shared
caches").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class MsgKind(enum.Enum):
    # Core -> directory requests
    GETS = "GetS"  # read permission
    GETX = "GetX"  # exclusive permission
    PUTM = "PutM"  # eviction of an E/M line (writeback)
    # Directory -> core
    DATA = "Data"  # shared data grant
    DATA_E = "DataE"  # exclusive data grant
    FWD_GETS = "FwdGetS"  # forward read request to owner
    FWD_GETX = "FwdGetX"  # forward exclusive request to owner
    INV = "Inv"  # invalidate a shared copy
    PUTM_ACK = "PutMAck"
    # Core -> directory acknowledgments
    UNBLOCK = "Unblock"
    INV_ACK = "InvAck"
    # Far atomics (extension; see DESIGN.md §5): the RMW executes at the
    # line's home L3/directory bank instead of acquiring the line.
    AMO_REQ = "AmoReq"
    AMO_RESP = "AmoResp"


REQUEST_KINDS = frozenset({MsgKind.GETS, MsgKind.GETX, MsgKind.PUTM})
EXTERNAL_KINDS = frozenset({MsgKind.INV, MsgKind.FWD_GETS, MsgKind.FWD_GETX})

_msg_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """One coherence message in flight (``slots=True``: messages are the
    highest-volume allocation in the memory system — several per miss).

    src/dst            -- network node ids (cores are 0..N-1; directory bank
                          b lives at node b: tiled CMP, bank co-located).
    requestor          -- core that started the transaction (FWD/INV carry it
                          so data can be sent cache-to-cache).
    from_private_cache -- set on DATA(_E) served by a remote private cache.
    issued_cycle       -- when the original request left the requestor
                          (carried through for latency bookkeeping).
    """

    kind: MsgKind
    line: int
    src: int
    dst: int
    requestor: int = -1
    exclusive: bool = False
    from_private_cache: bool = False
    issued_cycle: int = 0
    # Far-atomic payload (AMO_REQ carries the operation; AMO_RESP the
    # old/new values the home bank produced).
    amo_op: object = None
    amo_operand: int = 0
    amo_expected: int = 0
    amo_addr: int = 0
    amo_old: int = 0
    amo_new: int = 0
    uid: int = field(default_factory=lambda: next(_msg_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.kind.value} line={self.line:#x} "
            f"{self.src}->{self.dst} req={self.requestor})"
        )
