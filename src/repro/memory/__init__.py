"""Memory system substrate: caches, MESI directory coherence, mesh network."""

from repro.memory.cache import SetAssocCache
from repro.memory.controller import PrivateCacheController
from repro.memory.directory import DirectoryBank, DirEntry
from repro.memory.interconnect import MeshNetwork
from repro.memory.messages import (
    EXTERNAL_KINDS,
    REQUEST_KINDS,
    Message,
    MsgKind,
)
from repro.memory.prefetcher import IPStridePrefetcher

__all__ = [
    "DirEntry",
    "DirectoryBank",
    "EXTERNAL_KINDS",
    "IPStridePrefetcher",
    "MeshNetwork",
    "Message",
    "MsgKind",
    "PrivateCacheController",
    "REQUEST_KINDS",
    "SetAssocCache",
]
