"""Architectural memory image.

A single coherence-serialized value store shared by all cores.  Reads and
writes only happen at architecturally meaningful instants — a load when its
data arrives (or forwards), a store when it drains from the SB holding M
permission, an atomic's read at lock time and its write at unlock — so the
values flowing through the simulator obey the same ordering the protocol
enforces, making atomicity and TSO litmus outcomes testable end to end.
"""

from __future__ import annotations


class MemoryImage:
    def __init__(self, initial: dict[int, int] | None = None) -> None:
        self._mem: dict[int, int] = dict(initial) if initial else {}
        self.reads = 0
        self.writes = 0

    def read(self, addr: int) -> int:
        self.reads += 1
        return self._mem.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self.writes += 1
        self._mem[addr] = value

    def peek(self, addr: int) -> int:
        """Read without counting (for tests and final-state checks)."""
        return self._mem.get(addr, 0)

    def snapshot(self) -> dict[int, int]:
        return dict(self._mem)
