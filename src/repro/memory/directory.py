"""MESI directory protocol with GEMS-style blocked transient states.

One :class:`DirectoryBank` lives at every mesh tile next to its L3 bank.
A transaction blocks the directory entry from the moment a request is
accepted until the requestor's Unblock arrives; requests that hit a blocked
entry queue in FIFO order.  This is precisely the mechanism behind Fig. 8 of
the paper: a second core's request for a line being handed to a first core
waits in the blocked queue, so the invalidation it eventually triggers can
reach the first core *after* that core's atomic has already unlocked — which
is why execution-window/ready-window contention detection alone is
insufficient and the latency-threshold (Dir) detector exists.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.params import SystemParams
from repro.common.stats import StatGroup
from repro.isa.instructions import apply_atomic
from repro.memory.cache import SetAssocCache
from repro.memory.messages import Message, MsgKind
from repro.sanitize.errors import ProtocolInvariantError

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.image import MemoryImage
    from repro.obs.tracer import Tracer
    from repro.sim.engine import EventEngine


@dataclass
class DirEntry:
    """Directory state for one cacheline."""

    state: str = "I"  # I, S, M (E merged into M), B (blocked)
    owner: int | None = None
    sharers: set[int] = field(default_factory=set)
    queue: deque[Message] = field(default_factory=deque)
    # Transaction-in-progress bookkeeping (valid while state == "B"):
    on_unblock: Callable[[], None] | None = None
    pending_acks: int = 0
    on_acks_done: Callable[[], None] | None = None


class DirectoryBank:
    """Directory + L3 bank for the lines homed at one mesh tile."""

    def __init__(
        self,
        node: int,
        params: SystemParams,
        engine: "EventEngine",
        stats: StatGroup | None = None,
        image: "MemoryImage | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.node = node
        self.params = params
        self.engine = engine
        self.stats = stats if stats is not None else StatGroup(f"dir{node}")
        self.l3 = SetAssocCache(params.l3_bank, name=f"l3[{node}]")
        self.entries: dict[int, DirEntry] = {}
        # Far atomics (extension) execute against the memory image here.
        self.image = image
        # Observer-only hook (repro.obs): every stable/blocked state edge
        # goes through _set_state so the trace sees each transition once.
        self.tracer = tracer

    # ------------------------------------------------------------------

    def entry(self, line: int) -> DirEntry:
        e = self.entries.get(line)
        if e is None:
            e = self.entries[line] = DirEntry()
        return e

    def _set_state(self, e: DirEntry, line: int, new: str) -> None:
        if self.tracer is not None and e.state != new:
            self.tracer.dir_transition(self.engine.now, self.node, line, e.state, new)
        e.state = new

    def receive(self, msg: Message) -> None:
        """Entry point for all messages addressed to this bank."""
        if msg.kind in (MsgKind.GETS, MsgKind.GETX, MsgKind.AMO_REQ):
            self._handle_request(msg)
        elif msg.kind is MsgKind.PUTM:
            self._handle_putm(msg)
        elif msg.kind is MsgKind.UNBLOCK:
            self._handle_unblock(msg)
        elif msg.kind is MsgKind.INV_ACK:
            self._handle_inv_ack(msg)
        else:
            raise ValueError(f"directory {self.node} cannot handle {msg!r}")

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _handle_request(self, msg: Message) -> None:
        e = self.entry(msg.line)
        if e.state == "B":
            e.queue.append(msg)
            self.stats.counter("requests_queued").add()
            return
        self.stats.counter(f"requests_{msg.kind.value}").add()
        if msg.kind is MsgKind.GETS:
            self._do_gets(e, msg)
        elif msg.kind is MsgKind.AMO_REQ:
            self._do_amo(e, msg)
        else:
            self._do_getx(e, msg)

    def _llc_fetch_delay(self, line: int) -> int:
        """Latency to obtain the line at the LLC (hit or memory fetch)."""
        hit = line in self.l3
        self.l3.insert(line)
        if hit:
            self.stats.counter("l3_hits").add()
            return self.params.l3_bank.hit_cycles
        self.stats.counter("l3_misses").add()
        return self.params.l3_bank.hit_cycles + self.params.memory_cycles

    def _grant_from_llc(self, msg: Message, exclusive: bool, delay: int) -> None:
        """Send DATA/DATA_E to the requestor after an LLC/memory delay."""
        kind = MsgKind.DATA_E if exclusive else MsgKind.DATA
        reply = Message(
            kind,
            msg.line,
            src=self.node,
            dst=msg.requestor,
            requestor=msg.requestor,
            exclusive=exclusive,
            from_private_cache=False,
            issued_cycle=msg.issued_cycle,
        )
        self.engine.schedule_in(
            delay, lambda: self.engine.send(reply, to_directory=False)
        )

    def _do_gets(self, e: DirEntry, msg: Message) -> None:
        req = msg.requestor
        if e.state == "I":
            delay = self._llc_fetch_delay(msg.line)
            self._grant_from_llc(msg, exclusive=True, delay=delay)
            self._block(e, msg.line, lambda: self._become_owner(e, msg.line, req))
        elif e.state == "S":
            delay = self._llc_fetch_delay(msg.line)
            self._grant_from_llc(msg, exclusive=False, delay=delay)
            self._block(e, msg.line, lambda: self._add_sharer(e, msg.line, req))
        elif e.state == "M":
            owner = e.owner
            if owner is None:
                raise ProtocolInvariantError(
                    "dir-owner",
                    f"directory {self.node} has an M entry with no owner "
                    f"while serving a GetS",
                    line=msg.line,
                    cycle=self.engine.now,
                )
            if owner == req:
                # Degenerate re-request (e.g. raced with own writeback).
                delay = self._llc_fetch_delay(msg.line)
                self._grant_from_llc(msg, exclusive=True, delay=delay)
                self._block(e, msg.line, lambda: self._become_owner(e, msg.line, req))
                return
            fwd = Message(
                MsgKind.FWD_GETS,
                msg.line,
                src=self.node,
                dst=owner,
                requestor=req,
                issued_cycle=msg.issued_cycle,
            )
            self.stats.counter("fwd_gets").add()
            lookup = self.params.l3_bank.hit_cycles
            self.engine.schedule_in(
                lookup, lambda: self.engine.send(fwd, to_directory=False)
            )
            # Owner's dirty copy is written back to the LLC on the downgrade.
            self.l3.insert(msg.line)
            self._block(
                e, msg.line, lambda: self._downgrade_owner(e, msg.line, owner, req)
            )
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"GETS in unexpected state {e.state}")

    def _do_getx(self, e: DirEntry, msg: Message) -> None:
        req = msg.requestor
        if e.state == "I":
            delay = self._llc_fetch_delay(msg.line)
            self._grant_from_llc(msg, exclusive=True, delay=delay)
            self._block(e, msg.line, lambda: self._become_owner(e, msg.line, req))
        elif e.state == "S":
            targets = sorted(e.sharers - {req})
            lookup = self.params.l3_bank.hit_cycles
            if not targets:
                self._grant_from_llc(msg, exclusive=True, delay=lookup)
                self._block(e, msg.line, lambda: self._become_owner(e, msg.line, req))
                return
            self.stats.counter("invalidations_sent").add(len(targets))
            e.pending_acks = len(targets)
            e.on_acks_done = lambda: self._grant_from_llc(
                msg, exclusive=True, delay=0
            )
            for sharer in targets:
                inv = Message(
                    MsgKind.INV,
                    msg.line,
                    src=self.node,
                    dst=sharer,
                    requestor=req,
                    issued_cycle=msg.issued_cycle,
                )
                self.engine.schedule_in(
                    lookup,
                    lambda m=inv: self.engine.send(m, to_directory=False),
                )
            self._block(e, msg.line, lambda: self._become_owner(e, msg.line, req))
        elif e.state == "M":
            owner = e.owner
            if owner is None:
                raise ProtocolInvariantError(
                    "dir-owner",
                    f"directory {self.node} has an M entry with no owner "
                    f"while serving a GetX",
                    line=msg.line,
                    cycle=self.engine.now,
                )
            if owner == req:
                delay = self._llc_fetch_delay(msg.line)
                self._grant_from_llc(msg, exclusive=True, delay=delay)
                self._block(e, msg.line, lambda: self._become_owner(e, msg.line, req))
                return
            fwd = Message(
                MsgKind.FWD_GETX,
                msg.line,
                src=self.node,
                dst=owner,
                requestor=req,
                issued_cycle=msg.issued_cycle,
            )
            self.stats.counter("fwd_getx").add()
            lookup = self.params.l3_bank.hit_cycles
            self.engine.schedule_in(
                lookup, lambda: self.engine.send(fwd, to_directory=False)
            )
            self._block(e, msg.line, lambda: self._become_owner(e, msg.line, req))
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"GETX in unexpected state {e.state}")

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------

    def _block(
        self, e: DirEntry, line: int, on_unblock: Callable[[], None]
    ) -> None:
        self._set_state(e, line, "B")
        e.on_unblock = on_unblock

    def _become_owner(self, e: DirEntry, line: int, core: int) -> None:
        self._set_state(e, line, "M")
        e.owner = core
        e.sharers = set()

    def _add_sharer(self, e: DirEntry, line: int, core: int) -> None:
        self._set_state(e, line, "S")
        e.sharers.add(core)

    def _downgrade_owner(
        self, e: DirEntry, line: int, owner: int, req: int
    ) -> None:
        self._set_state(e, line, "S")
        e.owner = None
        e.sharers = {owner, req}

    def _handle_unblock(self, msg: Message) -> None:
        e = self.entry(msg.line)
        if e.state != "B" or e.on_unblock is None:  # pragma: no cover
            raise RuntimeError(f"unexpected Unblock for line {msg.line:#x}")
        action = e.on_unblock
        e.on_unblock = None
        action()
        self.stats.counter("transactions").add()
        if e.queue:
            self._handle_request_from_queue(e)

    def _handle_request_from_queue(self, e: DirEntry) -> None:
        nxt = e.queue.popleft()
        self.stats.counter(f"requests_{nxt.kind.value}").add()
        if nxt.kind is MsgKind.GETS:
            self._do_gets(e, nxt)
        elif nxt.kind is MsgKind.GETX:
            self._do_getx(e, nxt)
        elif nxt.kind is MsgKind.AMO_REQ:
            self._do_amo(e, nxt)
        else:
            self._apply_putm(e, nxt)
            if e.queue and e.state != "B":
                self._handle_request_from_queue(e)

    def _handle_inv_ack(self, msg: Message) -> None:
        e = self.entry(msg.line)
        if e.pending_acks <= 0:  # pragma: no cover - defensive
            raise RuntimeError(f"stray InvAck for line {msg.line:#x}")
        e.pending_acks -= 1
        if e.pending_acks == 0 and e.on_acks_done is not None:
            action = e.on_acks_done
            e.on_acks_done = None
            action()

    # ------------------------------------------------------------------
    # Far atomics (extension; DESIGN.md §5)
    # ------------------------------------------------------------------

    def _do_amo(self, e: DirEntry, msg: Message) -> None:
        """Execute an RMW at the home bank.

        The line is pulled out of every private cache first (exactly one
        writer, like a GetX whose requestor is the bank itself), then the
        operation runs against the LLC copy and only the old value travels
        back — no line transfer, no cache locking.
        """
        if self.image is None:
            raise RuntimeError(
                f"directory {self.node}: far atomics need a memory image"
            )
        if e.state == "I":
            delay = self._llc_fetch_delay(msg.line)
            self._set_state(e, msg.line, "B")
            self.engine.schedule_in(delay, lambda: self._finish_amo(e, msg))
        elif e.state == "S":
            targets = sorted(e.sharers)
            if not targets:
                self._set_state(e, msg.line, "B")
                self.engine.schedule_in(
                    self.params.l3_bank.hit_cycles,
                    lambda: self._finish_amo(e, msg),
                )
                return
            self._set_state(e, msg.line, "B")
            e.pending_acks = len(targets)
            e.on_acks_done = lambda: self._finish_amo(e, msg)
            self.stats.counter("invalidations_sent").add(len(targets))
            for sharer in targets:
                inv = Message(
                    MsgKind.INV,
                    msg.line,
                    src=self.node,
                    dst=sharer,
                    requestor=msg.requestor,
                    issued_cycle=msg.issued_cycle,
                )
                self.engine.schedule_in(
                    self.params.l3_bank.hit_cycles,
                    lambda m=inv: self.engine.send(m, to_directory=False),
                )
        elif e.state == "M":
            owner = e.owner
            if owner is None:
                raise ProtocolInvariantError(
                    "dir-owner",
                    f"directory {self.node} has an M entry with no owner "
                    f"while serving an AMO",
                    line=msg.line,
                    cycle=self.engine.now,
                )
            self._set_state(e, msg.line, "B")
            e.pending_acks = 1
            e.on_acks_done = lambda: self._finish_amo(e, msg)
            inv = Message(
                MsgKind.INV,
                msg.line,
                src=self.node,
                dst=owner,
                requestor=msg.requestor,
                issued_cycle=msg.issued_cycle,
            )
            self.engine.schedule_in(
                self.params.l3_bank.hit_cycles,
                lambda: self.engine.send(inv, to_directory=False),
            )
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"AMO in unexpected state {e.state}")

    def _finish_amo(self, e: DirEntry, msg: Message) -> None:
        if self.image is None:
            raise ProtocolInvariantError(
                "amo-image",
                f"directory {self.node} completed an AMO without a memory "
                f"image to execute it against",
                line=msg.line,
                cycle=self.engine.now,
            )
        old = self.image.read(msg.amo_addr)
        new, loaded = apply_atomic(
            msg.amo_op, old, msg.amo_operand, msg.amo_expected
        )
        self.image.write(msg.amo_addr, new)
        self.l3.insert(msg.line)
        self._set_state(e, msg.line, "I")
        e.owner = None
        e.sharers = set()
        self.stats.counter("amo_executed").add()
        resp = Message(
            MsgKind.AMO_RESP,
            msg.line,
            src=self.node,
            dst=msg.requestor,
            requestor=msg.requestor,
            issued_cycle=msg.issued_cycle,
            amo_old=loaded,
            amo_new=new,
        )
        self.engine.send(resp, to_directory=False)
        if e.queue:
            self._handle_request_from_queue(e)

    # ------------------------------------------------------------------
    # Writebacks
    # ------------------------------------------------------------------

    def _handle_putm(self, msg: Message) -> None:
        e = self.entry(msg.line)
        if e.state == "B":
            e.queue.append(msg)
            return
        self._apply_putm(e, msg)

    def _apply_putm(self, e: DirEntry, msg: Message) -> None:
        if e.state == "M" and e.owner == msg.src:
            self._set_state(e, msg.line, "I")
            e.owner = None
            self.l3.insert(msg.line)
            self.stats.counter("writebacks").add()
        else:
            self.stats.counter("stale_putm").add()
        ack = Message(
            MsgKind.PUTM_ACK,
            msg.line,
            src=self.node,
            dst=msg.src,
            requestor=msg.src,
        )
        self.engine.send(ack, to_directory=False)
