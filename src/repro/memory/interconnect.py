"""Tiled-CMP interconnect models with per-link bandwidth.

Stands in for GARNET (Sec. V).  The model is latency + bandwidth: a message
crossing ``h`` hops pays ``h * (link + router)`` cycles, and each directed
link carries at most ``link_bandwidth`` messages per cycle — additional
messages slip to the next free cycle, so bursts of coherence traffic to a
hot directory bank serialize, which is exactly the behaviour the paper's
contended workloads stress.

Three topologies (``SystemParams.topology``):

* ``MESH``     — 2-D mesh with XY routing (the paper's configuration).
* ``RING``     — bidirectional ring, shortest-direction routing.
* ``CROSSBAR`` — ideal single-hop all-to-all; contention only at the
  destination port.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.common.params import NetworkTopology, SystemParams
from repro.common.stats import StatGroup


class MeshNetwork:
    """Tiled CMP network: node ``i`` hosts core ``i`` and L3/dir bank ``i``.

    (The name predates the ring/crossbar options; ``Network`` is an alias.)
    """

    def __init__(self, params: SystemParams, stats: StatGroup | None = None) -> None:
        self.params = params
        self.topology = params.topology
        self.num_nodes = params.num_cores
        self.side = max(1, math.ceil(math.sqrt(self.num_nodes)))
        self.hop_latency = params.link_cycles + params.router_cycles
        self.bandwidth = max(1, params.link_bandwidth)
        self.model_contention = params.model_link_contention
        self.stats = stats if stats is not None else StatGroup("network")
        # (src_node, dst_node, cycle) -> messages already claiming that link
        self._link_claims: dict[tuple[int, int, int], int] = defaultdict(int)
        self._prune_before = 0
        # Topology is static, so routes / hop counts / line->bank homes are
        # pure functions of their arguments: memoized on first use (the
        # cached route lists are shared — callers must not mutate them).
        self._route_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self._hops_cache: dict[tuple[int, int], int] = {}
        self._bank_table: dict[int, int] = {}
        # Stat objects are cached lazily so creation-on-first-use (and the
        # resulting snapshot contents/order) match the unmemoized model.
        self._stat_messages = None
        self._stat_latency = None
        self._stat_stalls = None

    def coords(self, node: int) -> tuple[int, int]:
        return node % self.side, node // self.side

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """The route as a list of directed (node, node) links (memoized)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self._route_cache[key] = self._compute_route(src, dst)
        return cached

    def _compute_route(self, src: int, dst: int) -> list[tuple[int, int]]:
        if src == dst:
            return []
        if self.topology is NetworkTopology.CROSSBAR:
            return [(src, dst)]
        if self.topology is NetworkTopology.RING:
            return self._ring_route(src, dst)
        return self._mesh_route(src, dst)

    def _mesh_route(self, src: int, dst: int) -> list[tuple[int, int]]:
        links: list[tuple[int, int]] = []
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        node = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = y * self.side + x
            links.append((node, nxt))
            node = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = y * self.side + x
            links.append((node, nxt))
            node = nxt
        return links

    def _ring_route(self, src: int, dst: int) -> list[tuple[int, int]]:
        n = self.num_nodes
        forward = (dst - src) % n
        step = 1 if forward <= n - forward else -1
        links: list[tuple[int, int]] = []
        node = src
        while node != dst:
            nxt = (node + step) % n
            links.append((node, nxt))
            node = nxt
        return links

    def hops(self, src: int, dst: int) -> int:
        key = (src, dst)
        cached = self._hops_cache.get(key)
        if cached is None:
            cached = self._hops_cache[key] = self._compute_hops(src, dst)
        return cached

    def _compute_hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        if self.topology is NetworkTopology.CROSSBAR:
            return 1
        if self.topology is NetworkTopology.RING:
            n = self.num_nodes
            forward = (dst - src) % n
            return min(forward, n - forward)
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def delivery_cycle(self, src: int, dst: int, now: int) -> int:
        """Cycle at which a message sent at ``now`` arrives at ``dst``."""
        messages = self._stat_messages
        if messages is None:
            messages = self._stat_messages = self.stats.counter("messages")
        messages.add()
        if src == dst:
            # Same tile: one router traversal.
            return now + self.params.router_cycles
        latency = self._stat_latency
        if latency is None:
            latency = self._stat_latency = self.stats.accumulator("latency")
        if not self.model_contention:
            arrival = now + self.hops(src, dst) * self.hop_latency
            latency.add(arrival - now)
            return arrival
        t = now
        claims = self._link_claims
        bandwidth = self.bandwidth
        hop_latency = self.hop_latency
        for a, b in self.route(src, dst):
            # Claim the earliest cycle >= t with spare bandwidth on the link.
            depart = t
            while claims[(a, b, depart)] >= bandwidth:
                depart += 1
                stalls = self._stat_stalls
                if stalls is None:
                    stalls = self._stat_stalls = self.stats.counter(
                        "link_stall_cycles"
                    )
                stalls.add()
            claims[(a, b, depart)] += 1
            t = depart + hop_latency
        latency.add(t - now)
        return t

    def prune(self, before_cycle: int) -> None:
        """Drop link-claim records older than ``before_cycle`` (memory bound)."""
        if before_cycle <= self._prune_before:
            return
        self._link_claims = defaultdict(
            int,
            {
                key: count
                for key, count in self._link_claims.items()
                if key[2] >= before_cycle
            },
        )
        self._prune_before = before_cycle

    def bank_of(self, line: int) -> int:
        """Home directory/L3 bank of a cacheline (static interleaving,
        served from a lazily filled line->bank table)."""
        bank = self._bank_table.get(line)
        if bank is None:
            bank = self._bank_table[line] = line % self.num_nodes
        return bank


# Alias reflecting the multi-topology support.
Network = MeshNetwork
