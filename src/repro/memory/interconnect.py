"""Tiled-CMP interconnect models with per-link bandwidth.

Stands in for GARNET (Sec. V).  The model is latency + bandwidth: a message
crossing ``h`` hops pays ``h * (link + router)`` cycles, and each directed
link carries at most ``link_bandwidth`` messages per cycle — additional
messages slip to the next free cycle, so bursts of coherence traffic to a
hot directory bank serialize, which is exactly the behaviour the paper's
contended workloads stress.

Three topologies (``SystemParams.topology``):

* ``MESH``     — 2-D mesh with XY routing (the paper's configuration).
* ``RING``     — bidirectional ring, shortest-direction routing.
* ``CROSSBAR`` — ideal single-hop all-to-all; contention only at the
  destination port.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.common.params import NetworkTopology, SystemParams
from repro.common.stats import StatGroup


class MeshNetwork:
    """Tiled CMP network: node ``i`` hosts core ``i`` and L3/dir bank ``i``.

    (The name predates the ring/crossbar options; ``Network`` is an alias.)
    """

    def __init__(self, params: SystemParams, stats: StatGroup | None = None) -> None:
        self.params = params
        self.topology = params.topology
        self.num_nodes = params.num_cores
        self.side = max(1, math.ceil(math.sqrt(self.num_nodes)))
        self.hop_latency = params.link_cycles + params.router_cycles
        self.bandwidth = max(1, params.link_bandwidth)
        self.model_contention = params.model_link_contention
        self.stats = stats if stats is not None else StatGroup("network")
        # (src_node, dst_node, cycle) -> messages already claiming that link
        self._link_claims: dict[tuple[int, int, int], int] = defaultdict(int)
        self._prune_before = 0

    def coords(self, node: int) -> tuple[int, int]:
        return node % self.side, node // self.side

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """The route as a list of directed (node, node) links."""
        if src == dst:
            return []
        if self.topology is NetworkTopology.CROSSBAR:
            return [(src, dst)]
        if self.topology is NetworkTopology.RING:
            return self._ring_route(src, dst)
        return self._mesh_route(src, dst)

    def _mesh_route(self, src: int, dst: int) -> list[tuple[int, int]]:
        links: list[tuple[int, int]] = []
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        node = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = y * self.side + x
            links.append((node, nxt))
            node = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = y * self.side + x
            links.append((node, nxt))
            node = nxt
        return links

    def _ring_route(self, src: int, dst: int) -> list[tuple[int, int]]:
        n = self.num_nodes
        forward = (dst - src) % n
        step = 1 if forward <= n - forward else -1
        links: list[tuple[int, int]] = []
        node = src
        while node != dst:
            nxt = (node + step) % n
            links.append((node, nxt))
            node = nxt
        return links

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        if self.topology is NetworkTopology.CROSSBAR:
            return 1
        if self.topology is NetworkTopology.RING:
            n = self.num_nodes
            forward = (dst - src) % n
            return min(forward, n - forward)
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def delivery_cycle(self, src: int, dst: int, now: int) -> int:
        """Cycle at which a message sent at ``now`` arrives at ``dst``."""
        self.stats.counter("messages").add()
        if src == dst:
            # Same tile: one router traversal.
            return now + self.params.router_cycles
        if not self.model_contention:
            arrival = now + self.hops(src, dst) * self.hop_latency
            self.stats.accumulator("latency").add(arrival - now)
            return arrival
        t = now
        for link in self.route(src, dst):
            # Claim the earliest cycle >= t with spare bandwidth on the link.
            depart = t
            while self._link_claims[(link[0], link[1], depart)] >= self.bandwidth:
                depart += 1
                self.stats.counter("link_stall_cycles").add()
            self._link_claims[(link[0], link[1], depart)] += 1
            t = depart + self.hop_latency
        self.stats.accumulator("latency").add(t - now)
        return t

    def prune(self, before_cycle: int) -> None:
        """Drop link-claim records older than ``before_cycle`` (memory bound)."""
        if before_cycle <= self._prune_before:
            return
        self._link_claims = defaultdict(
            int,
            {
                key: count
                for key, count in self._link_claims.items()
                if key[2] >= before_cycle
            },
        )
        self._prune_before = before_cycle

    def bank_of(self, line: int) -> int:
        """Home directory/L3 bank of a cacheline (static interleaving)."""
        return line % self.num_nodes


# Alias reflecting the multi-topology support.
Network = MeshNetwork
