#!/usr/bin/env python3
"""A shared atomic counter under the microscope.

Every thread performs fetch-and-increment on one cacheline — the textbook
contended-atomic scenario.  The example demonstrates three things:

1. *Atomicity*: the final counter equals threads x increments under every
   execution policy (the coherence protocol + Atomic Queue guarantee).
2. *The eager trap*: eager execution locks the line long before the atomic
   can commit, so the line bounces with huge handoff latencies.
3. *The lazy win*: issuing at the head of the load queue with a drained
   store buffer shrinks the lock window to ~1 cycle.

Run:  python examples/contended_counter.py [threads] [increments]
"""

from __future__ import annotations

import sys

from repro import AtomicMode, SystemParams, simulate
from repro.workloads.litmus import atomic_counter


def main() -> None:
    threads = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    increments = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    expected = threads * increments
    print(f"{threads} threads x {increments} fetch-and-increments "
          f"(expected final value: {expected})\n")

    header = (
        f"{'policy':>8s} {'cycles':>9s} {'counter':>8s} {'ok':>3s}"
        f" {'lock window':>12s} {'ext. stalls':>12s} {'revocations':>12s}"
    )
    print(header)
    print("-" * len(header))
    for mode in (AtomicMode.EAGER, AtomicMode.LAZY, AtomicMode.ROW):
        params = SystemParams.small(
            num_cores=max(threads, 2)
        ).with_atomic_mode(mode)
        program = atomic_counter(threads, increments)
        result = simulate(params, program)
        final = result.memory_snapshot.get(program.metadata["addr"], 0)
        stats = result.merged_core_stats()
        print(
            f"{mode.value:>8s} {result.cycles:>9,} {final:>8,} "
            f"{'yes' if final == expected else 'NO':>3s} "
            f"{result.breakdown.lock_to_unlock.mean:>11.1f}c "
            f"{stats.counter('externals_blocked_on_lock').value:>12,} "
            f"{stats.counter('lock_revocations').value:>12,}"
        )
    print(
        "\nNote how eager execution stalls external coherence requests on\n"
        "locked lines (and occasionally needs a lock revocation to stay\n"
        "deadlock-free), while lazy keeps the lock window near one cycle."
    )


if __name__ == "__main__":
    main()
