#!/usr/bin/env python3
"""Quickstart: simulate one workload under eager, lazy and RoW policies.

Builds a synthetic producer-consumer workload (the paper's most contended
application), runs it on an 8-core system under the three execution
policies, and prints the comparison the whole paper is about.

Run:  python examples/quickstart.py [workload]
"""

from __future__ import annotations

import sys

from repro import AtomicMode, SystemParams, build_program, simulate


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "pc"
    params = SystemParams.small()
    program = build_program(
        workload,
        num_threads=params.num_cores,
        instructions_per_thread=5000,
        seed=1,
    )
    print(f"workload: {workload}  ({program.total_instructions()} instructions, "
          f"{params.num_cores} cores)\n")

    baseline = None
    for mode in (AtomicMode.EAGER, AtomicMode.LAZY, AtomicMode.ROW):
        result = simulate(params.with_atomic_mode(mode), program)
        if baseline is None:
            baseline = result.cycles
        stats = result.merged_core_stats()
        breakdown = result.breakdown.means()
        print(f"--- {mode.value} ---")
        print(f"  cycles            : {result.cycles:>9,}"
              f"   (normalized {result.cycles / baseline:.3f})")
        print(f"  IPC               : {result.ipc:>9.2f}")
        print(f"  atomics committed : {result.atomics_committed():>9,}"
              f"   ({result.atomics_per_10k():.1f} per 10k instructions)")
        print(f"  contended (truth) : {100 * result.contended_fraction():>8.1f}%")
        print(f"  lock window       : {breakdown['lock_to_unlock']:>9.1f} cycles")
        print(f"  avg miss latency  : {result.avg_miss_latency():>9.1f} cycles")
        if mode is AtomicMode.ROW:
            lazy = stats.counter("atomics_issued_lazy").value
            total = max(1, stats.counter("atomics_committed").value)
            print(f"  executed lazy     : {lazy:>9,}   ({100 * lazy / total:.0f}%)")
            print(f"  predictor accuracy: {100 * result.predictor_accuracy():>8.1f}%")
        print()

    print("Interpretation: on contended workloads lazy execution shrinks the")
    print("lock window and wins; on non-contended ones (try 'canneal') eager")
    print("hides the atomic's miss latency and wins.  RoW predicts per-atomic")
    print("which regime it is in and tracks the better policy.")


if __name__ == "__main__":
    main()
