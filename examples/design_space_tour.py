#!/usr/bin/env python3
"""A guided tour of RoW's design space on one contended workload.

Walks the choices Sec. IV motivates — detection mechanism, predictor
policy, predictor size, Dir threshold — one axis at a time, always against
the same traces, so the contribution of each piece is visible in isolation.

Run:  python examples/design_space_tour.py [workload]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import (
    AtomicMode,
    DetectionMode,
    PredictorKind,
    SystemParams,
    build_program,
    simulate,
)


def measure(params, program, baseline_cycles=None):
    result = simulate(params, program)
    norm = result.cycles / baseline_cycles if baseline_cycles else 1.0
    return result.cycles, norm


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "pc"
    base = SystemParams.small()
    program = build_program(workload, base.num_cores, 5000, seed=1)
    eager_cycles, _ = measure(base.with_atomic_mode(AtomicMode.EAGER), program)
    print(f"workload {workload!r}; all numbers normalized to always-eager "
          f"({eager_cycles:,} cycles)\n")

    print("axis 1 — detection mechanism (Sat predictor):")
    for detection in DetectionMode:
        params = base.with_atomic_mode(
            AtomicMode.ROW, detection=detection, predictor=PredictorKind.SATURATE
        )
        _, norm = measure(params, program, eager_cycles)
        print(f"  {detection.value:8s} -> {norm:.3f}")

    print("\naxis 2 — predictor update policy (RW+Dir detection):")
    for predictor in PredictorKind:
        params = base.with_atomic_mode(
            AtomicMode.ROW, detection=DetectionMode.RW_DIR, predictor=predictor
        )
        _, norm = measure(params, program, eager_cycles)
        print(f"  {predictor.value:8s} -> {norm:.3f}")

    print("\naxis 3 — predictor table size (RW+Dir, Sat):")
    for entries in (1, 16, 64):
        params = base.with_atomic_mode(
            AtomicMode.ROW, detection=DetectionMode.RW_DIR,
            predictor=PredictorKind.SATURATE,
        )
        params = replace(params, row=replace(params.row, predictor_entries=entries))
        _, norm = measure(params, program, eager_cycles)
        print(f"  {entries:4d} entries -> {norm:.3f}")

    print("\naxis 4 — Dir latency threshold (RW+Dir, Sat):")
    for threshold in (0, 40, 400, None):
        params = base.with_atomic_mode(
            AtomicMode.ROW, detection=DetectionMode.RW_DIR,
            predictor=PredictorKind.SATURATE, latency_threshold=threshold,
        )
        _, norm = measure(params, program, eager_cycles)
        label = "inf" if threshold is None else str(threshold)
        print(f"  thr={label:4s} -> {norm:.3f}")

    lazy_cycles, lazy_norm = measure(
        base.with_atomic_mode(AtomicMode.LAZY), program, eager_cycles
    )
    print(f"\nreference: always-lazy -> {lazy_norm:.3f} ({lazy_cycles:,} cycles)")
    print("Reading: each axis should move RoW toward min(eager, lazy);"
          " the paper's chosen point is RW+Dir with a 64-entry predictor.")


if __name__ == "__main__":
    main()
