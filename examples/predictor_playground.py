#!/usr/bin/env python3
"""Train RoW's contention predictors on synthetic behaviour streams.

Feeds the UpDown, Saturate-on-Contention and +2/-1 predictors with atomics
whose contention follows configurable patterns (steady, bursty, phased,
noisy) and reports prediction accuracy and the eager/lazy decisions taken,
illustrating the hysteresis trade-off of Sec. IV-D: UpDown is accurate on
stable behaviour; Saturate reacts instantly to contention and only drifts
back to eager after 15 clean runs.

Run:  python examples/predictor_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.common.params import PredictorKind, RowParams
from repro.row.predictor import ContentionPredictor


def patterns(rng: np.random.Generator) -> dict[str, list[bool]]:
    n = 600
    return {
        "always contended": [True] * n,
        "never contended": [False] * n,
        "phased (200 on / 200 off)": [bool((i // 200) % 2 == 0) for i in range(n)],
        "bursty (1 in 16)": [i % 16 == 0 for i in range(n)],
        "noisy 70/30": list(rng.random(n) < 0.7),
        "noisy 30/70": list(rng.random(n) < 0.3),
    }


def evaluate(kind: PredictorKind, stream: list[bool]) -> tuple[float, float]:
    predictor = ContentionPredictor(RowParams(predictor=kind))
    pc = 0x40
    correct = 0
    lazy = 0
    for contended in stream:
        predicted = predictor.predict(pc)
        correct += predicted == contended
        lazy += predicted
        predictor.update(pc, contended)
    return correct / len(stream), lazy / len(stream)


def main() -> None:
    rng = np.random.default_rng(7)
    kinds = [PredictorKind.UPDOWN, PredictorKind.SATURATE, PredictorKind.PLUS2MINUS1]
    print(f"{'pattern':<28s}" + "".join(f"{k.value:>18s}" for k in kinds))
    print(f"{'':<28s}" + "   acc / %lazy  " * len(kinds))
    print("-" * (28 + 18 * len(kinds)))
    for name, stream in patterns(rng).items():
        cells = []
        for kind in kinds:
            acc, lazy_frac = evaluate(kind, stream)
            cells.append(f"{100 * acc:5.1f}% /{100 * lazy_frac:4.0f}%")
        print(f"{name:<28s}" + "".join(f"{c:>18s}" for c in cells))
    print(
        "\nSaturate trades accuracy for safety: a single contention event"
        "\nforces 15 lazy executions, which is why the paper pairs it with"
        "\nthe RW+Dir detector whose signal is sparse under lazy execution."
    )


if __name__ == "__main__":
    main()
