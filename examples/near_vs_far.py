#!/usr/bin/env python3
"""Near vs far atomics: the *where* axis, next to RoW's *when* axis.

x86 implements near atomics (the RMW runs in the local cache under a line
lock — the regime the paper optimizes); IBM POWER offers far atomics (the
RMW runs at the shared cache, no line transfer).  This extension example
measures both on the same substrate, per workload.

Run:  python examples/near_vs_far.py [workload...]
"""

from __future__ import annotations

import sys

from repro import AtomicMode, SystemParams, build_program, simulate

DEFAULT = ("canneal", "cq", "tpcc", "pc")


def main() -> None:
    workloads = sys.argv[1:] or list(DEFAULT)
    params = SystemParams.small()
    header = (
        f"{'workload':<12s} {'eager':>8s} {'lazy':>8s} {'RoW':>8s} {'far':>8s}"
        f"   (cycles, normalized to near-eager)"
    )
    print(header)
    print("-" * len(header))
    for workload in workloads:
        program = build_program(workload, params.num_cores, 4000, seed=1)
        eager = simulate(params.with_atomic_mode(AtomicMode.EAGER), program)
        cells = [1.0]
        for mode in (AtomicMode.LAZY, AtomicMode.ROW, AtomicMode.FAR):
            result = simulate(params.with_atomic_mode(mode), program)
            cells.append(result.cycles / eager.cycles)
        print(
            f"{workload:<12s} "
            + " ".join(f"{c:>8.3f}" for c in cells)
        )
    print(
        "\nFar execution removes line ping-pong (competitive with lazy under"
        "\ncontention) but serializes RMWs at the home bank and cannot hide"
        "\nmiss latency (losing badly on canneal) — which is why the paper's"
        "\nnear-atomic scheduling problem exists in the first place."
    )


if __name__ == "__main__":
    main()
