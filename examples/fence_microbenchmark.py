#!/usr/bin/env python3
"""Reproduce the Sec. II-A experiment: do modern x86 cores fence atomics?

Runs the random-access RMW microbenchmark in all four variants (with and
without the lock prefix, with and without explicit mfences) on two simulated
machines: a Kentsfield-class core with fenced atomics (2007) and a Coffee
Lake-class core with unfenced atomics (2019).  This regenerates Fig. 2.

Run:  python examples/fence_microbenchmark.py [iterations]
"""

from __future__ import annotations

import sys

from repro import AtomicOp, build_microbench, simulate
from repro.analysis.figures import legacy_core_params, modern_core_params
from repro.workloads.microbench import VARIANTS


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    machines = [
        ("old x86 (fenced atomics, 2 MSHRs)", legacy_core_params()),
        ("new x86 (unfenced atomics, 4 MSHRs)", modern_core_params()),
    ]
    for label, params in machines:
        print(f"\n=== {label} ===")
        print(f"{'op':>6s} | " + " | ".join(f"{v:>13s}" for v in VARIANTS))
        for op in (AtomicOp.FAA, AtomicOp.CAS, AtomicOp.SWAP):
            cells = []
            for variant in VARIANTS:
                program = build_microbench(op, variant, iterations=iterations)
                result = simulate(params, program)
                cells.append(result.cycles / iterations)
            print(
                f"{op.value:>6s} | "
                + " | ".join(f"{c:>13.1f}" for c in cells)
            )
    print(
        "\nReading the table (cycles/iteration, lower is better):\n"
        " * old x86: adding the lock prefix ~doubles the cost (a built-in\n"
        "   fence) and explicit mfences change nothing on top of it;\n"
        " * new x86: the lock prefix is free, but explicit mfences collapse\n"
        "   memory-level parallelism and multiply the cost several times;\n"
        " * swap (xchg) locks implicitly in every variant."
    )


if __name__ == "__main__":
    main()
