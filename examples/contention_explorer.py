#!/usr/bin/env python3
"""Sweep contention to find the eager/lazy crossover.

Takes one workload profile and sweeps the fraction of atomics that target
the shared hot set from 0% to 90%, printing the normalized execution time
of lazy and RoW against eager at each point.  This is the design space of
Sec. III made visible: eager wins on the left, lazy on the right, and RoW
should hug the lower envelope.

Run:  python examples/contention_explorer.py [instructions_per_thread]
"""

from __future__ import annotations

import sys

from repro import AtomicMode, SystemParams, build_program, get_profile, simulate
from repro.common.stats import geomean

SWEEP = (0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9)
SEEDS = (0, 1)


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    base = get_profile("pc")
    params = SystemParams.small()
    print("hot%  | lazy/eager | row/eager | winner")
    print("------+------------+-----------+-------")
    for hot in SWEEP:
        profile = base.with_overrides(hot_fraction=hot, name=f"sweep{hot}")
        lazy_ratios, row_ratios = [], []
        for seed in SEEDS:
            program = build_program(
                profile, params.num_cores, instructions, seed=seed
            )
            eager = simulate(params.with_atomic_mode(AtomicMode.EAGER), program)
            lazy = simulate(params.with_atomic_mode(AtomicMode.LAZY), program)
            row = simulate(params.with_atomic_mode(AtomicMode.ROW), program)
            lazy_ratios.append(lazy.cycles / eager.cycles)
            row_ratios.append(row.cycles / eager.cycles)
        lazy_norm = geomean(lazy_ratios)
        row_norm = geomean(row_ratios)
        winner = "lazy" if lazy_norm < 0.97 else ("eager" if lazy_norm > 1.03 else "tie")
        print(
            f"{100 * hot:>4.0f}% | {lazy_norm:>10.3f} | {row_norm:>9.3f} | {winner}"
        )
    print(
        "\nThe crossover is where the lazy/eager column passes 1.0; RoW's"
        "\ncolumn should track min(1.0, lazy/eager) within noise."
    )


if __name__ == "__main__":
    main()
