#!/usr/bin/env python3
"""Dissect a RoW run: which detection mechanism fires, what gets promoted.

Runs one contended and one locality-heavy workload under every RoW variant
(EW / RW / RW+Dir x U/D / Sat, with and without forwarding) and prints the
full per-variant anatomy: detection counts, lazy-issue fraction, forwarding
promotions and the resulting execution time.

Run:  python examples/row_anatomy.py [workload...]
"""

from __future__ import annotations

import sys

from repro import (
    AtomicMode,
    DetectionMode,
    PredictorKind,
    SystemParams,
    build_program,
    simulate,
)


def variants():
    for detection in DetectionMode:
        for predictor in (PredictorKind.UPDOWN, PredictorKind.SATURATE):
            yield detection, predictor, False
    yield DetectionMode.RW_DIR, PredictorKind.UPDOWN, True
    yield DetectionMode.RW_DIR, PredictorKind.SATURATE, True


def main() -> None:
    workloads = sys.argv[1:] or ["pc", "cq"]
    base = SystemParams.small()
    for workload in workloads:
        program = build_program(workload, base.num_cores, 4000, seed=1)
        eager = simulate(base.with_atomic_mode(AtomicMode.EAGER), program)
        print(f"\n=== {workload} (eager baseline: {eager.cycles:,} cycles) ===")
        header = (
            f"{'variant':<18s} {'norm':>6s} {'acc':>6s} {'lazy%':>6s}"
            f" {'detected':>9s} {'promoted':>9s} {'forwarded':>10s}"
        )
        print(header)
        print("-" * len(header))
        for detection, predictor, fwd in variants():
            params = base.with_atomic_mode(
                AtomicMode.ROW,
                detection=detection,
                predictor=predictor,
                forward_to_atomics=fwd,
            )
            result = simulate(params, program)
            stats = result.merged_core_stats()
            total = max(1, stats.counter("atomics_committed").value)
            name = f"{detection.value}_{predictor.value}" + ("+fwd" if fwd else "")
            print(
                f"{name:<18s} {result.cycles / eager.cycles:>6.3f}"
                f" {100 * result.predictor_accuracy():>5.1f}%"
                f" {100 * stats.counter('atomics_issued_lazy').value / total:>5.1f}%"
                f" {stats.counter('atomics_contended_detected').value:>9,}"
                f" {stats.counter('atomics_promoted_eager').value:>9,}"
                f" {stats.counter('atomics_forwarded').value:>10,}"
            )


if __name__ == "__main__":
    main()
