"""Fig. 10 — sensitivity of RW+Dir to the latency threshold."""

from repro.analysis.figures import figure10

# The sweep is the most expensive figure; a representative subset keeps the
# default harness tractable while covering both behaviour classes.
SUBSET = ("canneal", "cq", "raytrace", "tpcc", "sps", "pc")


def test_fig10_threshold_sensitivity(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure10, args=(scale, SUBSET), kwargs={"runner": runner},
        rounds=1, iterations=1
    )
    record_figure(fig)
    geo = fig.row_map()["GEOMEAN"]
    cols = {name: i for i, name in enumerate(fig.columns)}
    # On the scaled system the optimum sits at the scaled threshold (~40):
    # it must beat the degenerate "inf" point, which behaves like plain RW.
    assert geo[cols["thr_40"]] <= geo[cols["thr_inf"]] + 0.01
    # Gigantic thresholds converge to the same behaviour as inf.
    assert abs(geo[cols["thr_2000"]] - geo[cols["thr_inf"]]) < 0.1
