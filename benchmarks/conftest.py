"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables/figures at the scale
selected by ``REPRO_SCALE`` (smoke | quick | full | paper; default quick),
prints the regenerated series, and records it under ``benchmarks/results/``.

All simulations run through one session-scoped
:class:`repro.analysis.parallel.Runner`, so the eager/lazy baselines are
shared across figures, ``REPRO_JOBS=N`` fans the job grids across worker
processes, and results persist in ``benchmarks/.cache`` (override with
``REPRO_BENCH_CACHE``; set it empty to disable) — re-running the suite
after an interruption resumes instead of re-simulating.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.parallel import Runner
from repro.analysis.report import FigureData
from repro.analysis.runner import scale_by_name

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_CACHE = pathlib.Path(__file__).parent / ".cache"


@pytest.fixture(scope="session")
def scale():
    # The env var is the harness's explicit scale channel (read once here,
    # at the edge), not the deprecated implicit default_scale() fallback.
    return scale_by_name(os.environ.get("REPRO_SCALE", "quick"))


@pytest.fixture(scope="session")
def runner():
    cache = os.environ.get("REPRO_BENCH_CACHE", str(DEFAULT_CACHE))
    return Runner(
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache_dir=cache or None,
    )


@pytest.fixture
def record_figure():
    """Print a regenerated figure and persist it to benchmarks/results/."""

    def _record(fig: FigureData) -> FigureData:
        text = fig.render()
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = fig.figure_id.lower().replace(".", "").replace(" ", "_")
        (RESULTS_DIR / f"{slug}.txt").write_text(text)
        return fig

    return _record
