"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables/figures at the scale
selected by ``REPRO_SCALE`` (smoke | quick | full | paper; default quick),
prints the regenerated series, and records it under ``benchmarks/results/``.
Simulation results are memoized process-wide, so running the whole suite
shares the eager/lazy baselines across figures.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.report import FigureData
from repro.analysis.runner import default_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    return default_scale()


@pytest.fixture
def record_figure():
    """Print a regenerated figure and persist it to benchmarks/results/."""

    def _record(fig: FigureData) -> FigureData:
        text = fig.render()
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = fig.figure_id.lower().replace(".", "").replace(" ", "_")
        (RESULTS_DIR / f"{slug}.txt").write_text(text)
        return fig

    return _record
