"""Fig. 13 — store->atomic forwarding and the atomic-locality promotion."""

from repro.analysis.figures import figure13


def test_fig13_forwarding(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure13, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    rows = fig.row_map()
    cols = {name: i for i, name in enumerate(fig.columns)}
    # cq: the forwarding promotion must recover (or improve on) the loss the
    # no-forwarding RoW suffers from executing locality atomics lazy.
    cq = rows["cq"]
    assert cq[cols["RW+Dir_U/D+fwd"]] <= cq[cols["RW+Dir_U/D"]] + 0.02
    # Forwarding never hurts the geomean.
    geo = rows["GEOMEAN"]
    assert geo[cols["RW+Dir_U/D+fwd"]] <= geo[cols["RW+Dir_U/D"]] + 0.02
    assert geo[cols["RW+Dir_Sat+fwd"]] <= geo[cols["RW+Dir_Sat"]] + 0.02
