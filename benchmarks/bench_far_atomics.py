"""Extension: near vs far atomics across the workload suite.

The paper's related work contrasts x86's near atomics with IBM-style far
atomics and cites work choosing between them by locality/contention.  This
bench measures the axis on our substrate: far execution eliminates line
ping-pong (good under contention) but serializes RMWs at the home bank and
forfeits eager's latency hiding (bad for miss-heavy uncontended atomics).
"""

from repro.analysis.report import FigureData
from repro.analysis.parallel import RunSpec
from repro.analysis.runner import base_params, config
from repro.common.params import AtomicMode
from repro.common.stats import geomean

WORKLOADS = ("canneal", "freqmine", "cq", "tatp", "raytrace", "tpcc", "sps", "pc")


def far_comparison(scale, runner) -> FigureData:
    base = base_params(scale)
    eager = config(base, AtomicMode.EAGER)
    fig = FigureData(
        "Ext-Far",
        "Near (eager/lazy/RoW) vs far atomics (normalized to near-eager)",
        ["workload", "lazy", "row", "far"],
    )
    lazy = config(base, AtomicMode.LAZY)
    row = config(base, AtomicMode.ROW)
    far = config(base, AtomicMode.FAR)
    runner.prefetch(RunSpec.grid(WORKLOADS, (eager, lazy, row, far), scale))
    for wl in WORKLOADS:
        fig.add_row(
            wl,
            runner.normalized_time(wl, lazy, eager, scale),
            runner.normalized_time(wl, row, eager, scale),
            runner.normalized_time(wl, far, eager, scale),
        )
    agg: list[object] = ["GEOMEAN"]
    for i in range(1, len(fig.columns)):
        agg.append(geomean([r[i] for r in fig.rows]))
    fig.add_row(*agg)
    fig.notes.append(
        "far ~ lazy under contention (no ping-pong), far >> eager on"
        " miss-heavy uncontended atomics (no latency hiding) — the reason"
        " x86 sticks to near atomics and RoW schedules them"
    )
    return fig


def test_far_atomics_comparison(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        far_comparison, args=(scale, runner), rounds=1, iterations=1
    )
    record_figure(fig)
    if scale.name == "smoke":
        return
    rows = fig.row_map()
    cols = {name: i for i, name in enumerate(fig.columns)}
    # Far beats eager where lazy does (contended) ...
    assert rows["pc"][cols["far"]] < 0.8
    # ... and loses where eager's latency hiding matters.
    assert rows["canneal"][cols["far"]] > 1.2
