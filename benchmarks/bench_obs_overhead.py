"""Overhead of the observability layer (the docs/observability.md numbers).

Zero-cost-when-disabled claim: with ``trace=False`` every hook point costs
one attribute load plus one ``is not None`` branch.  The hook-free ideal
cannot be timed directly (the hooks are compiled in), so the bench prices
that guard with ``timeit``, multiplies by the number of hook executions the
same run performs, and asserts the product stays under 2% of the run's
wall-clock.  The tracing-*on* ratio is printed for the docs table but not
asserted — it is allowed to cost real time.
"""

import time
import timeit

from repro.common.params import SystemParams
from repro.isa.instructions import AtomicOp
from repro.obs import EventTrace
from repro.sim.multicore import simulate
from repro.workloads.microbench import build_microbench

ITERATIONS = 300
REPEATS = 5


def _median_runtime(program, params, trace):
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        simulate(params, program, trace=trace)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def test_tracing_off_overhead_under_two_percent():
    params = SystemParams.quick()
    program = build_microbench(AtomicOp.FAA, "lock", iterations=ITERATIONS)

    off = _median_runtime(program, params, trace=False)

    # Count how many hook executions one run performs: with the default
    # config nothing is filtered or sampled, so the trace's pre-ring
    # counts are exactly the number of guarded emission sites hit.
    probe = EventTrace()
    simulate(params, program, trace=probe)
    hooks = probe.counts.total()
    assert hooks > 0

    guard = min(
        timeit.repeat(
            "if tracer is not None:\n    pass",
            setup="tracer = None",
            number=hooks,
            repeat=5,
        )
    )
    overhead = guard / off

    on = _median_runtime(program, params, trace=EventTrace())
    print(
        f"\nobs overhead: off={off * 1e3:.1f}ms, on={on * 1e3:.1f}ms"
        f" ({on / off:.2f}x), {hooks} hook site executions,"
        f" disabled-guard cost {guard * 1e6:.0f}us"
        f" ({100 * overhead:.3f}% of run)"
    )
    assert overhead < 0.02, (
        f"disabled tracing hooks cost {100 * overhead:.2f}% of wall-clock"
        f" (budget: 2%)"
    )


def test_traced_run_stays_bounded():
    """Tracing on is allowed to cost time, but a capacity-bounded config
    must not blow the run up (ring buffer caps memory, sampling caps CPU)."""
    from repro.obs import TraceConfig

    params = SystemParams.quick()
    program = build_microbench(AtomicOp.FAA, "lock", iterations=ITERATIONS)
    off = _median_runtime(program, params, trace=False)
    sampled = _median_runtime(
        program,
        params,
        trace=TraceConfig(capacity=4096, sample_every=16),
    )
    # Generous bound: sampled tracing should stay within 2x of untraced.
    assert sampled < 2 * off, (
        f"sampled tracing {sampled * 1e3:.1f}ms vs untraced {off * 1e3:.1f}ms"
    )
