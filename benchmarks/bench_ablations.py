"""Ablations of RoW's design choices (beyond the paper's figures).

Covers the sizing decisions Sec. IV-D/IV-F motivates in prose: predictor
table size (including the single-entry degradation the paper quantifies),
counter width (Sat hysteresis depth), the +2/−1 update policy the authors
evaluated and set aside, and the AQ depth inherited from Free Atomics.
"""

from repro.analysis.ablations import (
    aq_depth_ablation,
    counter_width_ablation,
    predictor_entries_ablation,
    predictor_policy_comparison,
    sb_depth_ablation,
)


def test_ablation_predictor_entries(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        predictor_entries_ablation, args=(scale,), kwargs={"runner": runner}, rounds=1,
        iterations=1
    )
    record_figure(fig)
    if scale.name == "smoke":
        return
    rows = fig.row_map()
    cols = {name: i for i, name in enumerate(fig.columns)}
    # The mixed hot/cold-site workload is where aliasing bites: a single
    # shared counter mis-schedules one class of atomics (paper Sec. IV-D).
    mixed = rows["mixed-alias"]
    assert mixed[cols["entries_64"]] <= mixed[cols["entries_1"]] + 0.01
    # 64 entries suffice: going to 256 buys nearly nothing anywhere.
    geo = rows["GEOMEAN"]
    assert abs(geo[cols["entries_256"]] - geo[cols["entries_64"]]) < 0.05


def test_ablation_counter_width(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        counter_width_ablation, args=(scale,), kwargs={"runner": runner}, rounds=1,
        iterations=1
    )
    record_figure(fig)
    if scale.name == "smoke":
        return
    geo = fig.row_map()["GEOMEAN"]
    cols = {name: i for i, name in enumerate(fig.columns)}
    # The paper's 4-bit choice should be at least as good as 1-bit
    # (which has no hysteresis at all).
    assert geo[cols["bits_4"]] <= geo[cols["bits_1"]] + 0.02


def test_ablation_predictor_policy(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        predictor_policy_comparison, args=(scale,), kwargs={"runner": runner}, rounds=1,
        iterations=1
    )
    record_figure(fig)
    if scale.name == "smoke":
        return  # too small for contended-regime assertions
    geo = fig.row_map()["GEOMEAN"]
    cols = {name: i for i, name in enumerate(fig.columns)}
    # All three policies beat always-eager on this contended subset; the
    # paper kept U/D and Sat.
    best = min(geo[cols["u/d"]], geo[cols["sat"]])
    assert best < 1.0
    assert geo[cols["+2/-1"]] < 1.05


def test_ablation_aq_depth(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        aq_depth_ablation, args=(scale,), kwargs={"runner": runner}, rounds=1,
        iterations=1
    )
    record_figure(fig)
    if scale.name == "smoke":
        return  # too few in-flight atomics to stress the AQ
    rows = fig.row_map()
    cols = {name: i for i, name in enumerate(fig.columns)}
    # canneal overlaps atomic misses: a 1-entry AQ costs real performance.
    assert rows["canneal"][cols["aq_1"]] > 1.1
    # 16 entries is the baseline (normalized 1.0 by construction).
    assert rows["canneal"][cols["aq_16"]] == 1.0


def test_ablation_sb_depth(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        sb_depth_ablation, args=(scale,), kwargs={"runner": runner}, rounds=1,
        iterations=1
    )
    record_figure(fig)
    if scale.name == "smoke":
        return
    rows = fig.row_map()
    cols = {name: i for i, name in enumerate(fig.columns)}
    # Every depth must produce a working system within sane bounds.
    for wl in ("canneal", "pc"):
        for col in ("sb_4", "sb_8", "sb_16", "sb_32"):
            assert 0.5 < rows[wl][cols[col]] < 2.0
