"""Fig. 5 — atomic intensity and contention ratio per workload."""

from repro.analysis.figures import figure5


def test_fig05_intensity_and_contention(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure5, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    rows = fig.row_map()
    # Every app in the per-app figures is atomic-intensive (>= 1 per 10k).
    for workload, row in rows.items():
        assert row[1] >= 1, f"{workload} fell below the selection criterion"
    # The contended trio is far more contended than canneal/freqmine.
    for contended in ("tpcc", "sps", "pc"):
        for clean in ("canneal", "freqmine"):
            assert rows[contended][2] > rows[clean][2] + 20
