"""Fig. 2 — the Sec. II-A fence microbenchmark on old vs new cores."""

from repro.analysis.figures import figure2


def test_fig02_microbench(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure2, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    rows = {(r[0], r[1], r[2]): r[3] for r in fig.rows}
    # Old x86: the lock prefix costs ~a fence (roughly doubles cycles) and
    # explicit mfences add nothing on top.
    assert rows[("old-x86", "faa", "lock")] > 1.6 * rows[("old-x86", "faa", "plain")]
    assert rows[("old-x86", "faa", "lock+mfence")] < 1.1 * rows[
        ("old-x86", "faa", "lock")
    ]
    # New x86: lock is free; explicit mfences collapse MLP (several times).
    assert rows[("new-x86", "faa", "lock")] < 1.1 * rows[("new-x86", "faa", "plain")]
    assert rows[("new-x86", "faa", "plain+mfence")] > 2.5 * rows[
        ("new-x86", "faa", "plain")
    ]
    # xchg locks regardless of the prefix (footnote 1).
    assert rows[("old-x86", "swap", "plain")] > 1.6 * rows[
        ("old-x86", "faa", "plain")
    ]
