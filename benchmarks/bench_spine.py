"""Spine benchmark: the pure event pump vs. the always-step loop.

Times the same two workloads through both main loops
(``quiesce=True/False``) and records simulated-cycles/sec, the
steps-skipped ratio and the pump-health counters (``stale_wakes``,
``empty_iterations``) in ``BENCH_spine.json`` at the repo root:

* **idle-heavy** — ``atomic_counter``: every core spins on one hot line,
  so at any instant most cores are stalled waiting for a cache response
  and the runnable set is small.  This is the workload the sleep/wake
  scheduler exists for.
* **contended** — the paper's producer/consumer profile at full length:
  cores are busy most cycles, so the win comes from the batched
  per-instruction kernels and hot-loop micro-optimisations (per-address
  LSQ indexes, incremental TAGE history folding, lazy counter caches)
  rather than from skipped steps.  Its speedup over the legacy loop is
  the report's **headline** number.

Timing methodology: the simulator is constructed *outside* the timed
region — only ``run()`` is measured, best of ``REPS``.  Construction
cost is identical for both loops, so including it only dilutes the
ratio; excluding it also keeps the number independent of workload-build
and warmup-prefill costs, which earlier revisions of this benchmark
accidentally timed.

The pytest entry point runs at quick scale and asserts the load-bearing
properties — both loops produce bit-identical :class:`RunMetrics`, the
pump runs zero empty passes — plus a floor on the skipped-step
fraction.  Wall-clock ratios are printed and recorded but not asserted;
timing assertions flake under CI load.  The standalone entry point
(``python benchmarks/bench_spine.py``) runs at paper scale (32 cores)
and rewrites ``BENCH_spine.json``, preserving the hand-measured
``pre_change_baseline`` section (timings of the spine as of the commit
before this benchmark existed, which in-tree runs can no longer
reproduce).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.analysis.runner import RunMetrics
from repro.common.params import AtomicMode, SystemParams
from repro.sim.multicore import MulticoreSimulator
from repro.workloads.litmus import atomic_counter
from repro.workloads.synthetic import build_program

REPS = 3
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_spine.json"


def _workloads(params: SystemParams, instructions: int, increments: int):
    return {
        "idle_heavy": (
            params.with_atomic_mode(AtomicMode.LAZY),
            atomic_counter(params.num_cores, increments),
        ),
        "contended": (
            params.with_atomic_mode(AtomicMode.EAGER),
            build_program("pc", params.num_cores, instructions, seed=0),
        ),
    }


def _time_mode(params, program, quiesce: bool):
    """Best-of-REPS wall clock for one loop flavour.

    Only ``run()`` is inside the timed region: program build, system
    construction and warmup prefill are identical for both flavours and
    must not pollute the spine measurement."""
    best = None
    result = None
    for _ in range(REPS):
        sim = MulticoreSimulator(params, program, quiesce=quiesce)
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def run_bench(params: SystemParams, instructions: int, increments: int) -> dict:
    report: dict = {}
    for name, (wl_params, program) in _workloads(
        params, instructions, increments
    ).items():
        t_quiesce, res_q = _time_mode(wl_params, program, quiesce=True)
        t_legacy, res_l = _time_mode(wl_params, program, quiesce=False)
        identical = (
            RunMetrics.from_result(res_q).to_json()
            == RunMetrics.from_result(res_l).to_json()
        )
        report[name] = {
            "cycles": res_q.cycles,
            "quiesce_seconds": round(t_quiesce, 4),
            "legacy_seconds": round(t_legacy, 4),
            "speedup_vs_legacy": round(t_legacy / t_quiesce, 3),
            "cycles_per_second_quiesce": round(res_q.cycles / t_quiesce),
            "cycles_per_second_legacy": round(res_l.cycles / t_legacy),
            "skipped_fraction": round(res_q.spine["skipped_fraction"], 4),
            "wakes": res_q.spine["wakes"],
            "stale_wakes": res_q.spine["stale_wakes"],
            "empty_iterations": res_q.spine["empty_iterations"],
            "metrics_identical": identical,
        }
    return report


# ---------------------------------------------------------------------------
# pytest entry point (quick scale)
# ---------------------------------------------------------------------------


def test_spine_quick_scale():
    report = run_bench(SystemParams.quick(), instructions=1500, increments=60)
    print()
    print(json.dumps(report, indent=2))
    for name, row in report.items():
        assert row["metrics_identical"], (
            f"{name}: quiesce=True and quiesce=False produced different"
            f" RunMetrics — the scheduler is no longer timing-transparent"
        )
        assert row["empty_iterations"] == 0, (
            f"{name}: the event pump burned {row['empty_iterations']}"
            f" passes on cycles with nothing due"
        )
    # The idle-heavy workload must actually exercise the sleep path.
    assert report["idle_heavy"]["skipped_fraction"] > 0.3


# ---------------------------------------------------------------------------
# standalone entry point (paper scale, rewrites BENCH_spine.json)
# ---------------------------------------------------------------------------


def main() -> None:
    previous: dict = {}
    if BENCH_PATH.exists():
        previous = json.loads(BENCH_PATH.read_text())
    report = run_bench(SystemParams.paper(), instructions=2000, increments=150)
    payload = {
        "benchmark": "quiescence-aware simulation spine",
        "scale": "paper (32 cores)",
        # The headline: how much faster the pure event pump simulates the
        # busy (contended) workload than the always-step legacy loop, at
        # identical (bit-for-bit) statistics.
        "headline": {
            "contended_speedup_vs_legacy": report["contended"][
                "speedup_vs_legacy"
            ],
            "idle_heavy_speedup_vs_legacy": report["idle_heavy"][
                "speedup_vs_legacy"
            ],
            "method": (
                f"best of {REPS}, run() only (system constructed outside"
                " the timed region), gc paused during run"
            ),
        },
        "workloads": report,
    }
    if "pre_change_baseline" in previous:
        payload["pre_change_baseline"] = previous["pre_change_baseline"]
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {BENCH_PATH}")


if __name__ == "__main__":
    main()
