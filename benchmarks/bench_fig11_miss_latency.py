"""Fig. 11 — average L1D miss latency under each policy."""

from repro.analysis.figures import figure11


def test_fig11_miss_latency(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure11, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    rows = fig.row_map()
    cols = {name: i for i, name in enumerate(fig.columns)}
    # Contended apps: eager execution inflates everyone's miss latency.
    for workload in ("pc", "sps"):
        assert rows[workload][cols["eager"]] > 1.2 * rows[workload][cols["lazy"]]
    # Non-contended apps: policy barely moves the miss latency.
    canneal = rows["canneal"]
    assert abs(canneal[cols["eager"]] - canneal[cols["lazy"]]) < 0.25 * canneal[
        cols["lazy"]
    ]
