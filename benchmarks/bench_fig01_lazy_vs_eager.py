"""Fig. 1 — normalized execution time of lazy vs eager atomics."""

from repro.analysis.figures import figure1


def test_fig01_lazy_vs_eager(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure1, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    rows = fig.row_map()
    # Paper shape: canneal/freqmine strongly eager-favoring...
    assert rows["canneal"][1] > 1.25
    assert rows["freqmine"][1] > 1.05
    # ...and pc strongly lazy-favoring.
    assert rows["pc"][1] < 0.8
