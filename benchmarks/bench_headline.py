"""The paper's headline claims (abstract / Sec. VI summary)."""

from repro.analysis.figures import headline


def test_headline_claims(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        headline, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    reproduced = {row[0]: row[2] for row in fig.rows}
    # RoW with forwarding reduces average execution time vs always-eager.
    avg = float(reproduced["RW+Dir_Sat+fwd vs eager (atomic-intensive, avg)"].rstrip("%"))
    assert avg > 0, "RoW must beat the eager baseline on average"
    mx = float(reproduced["RW+Dir_Sat+fwd vs eager (max)"].rstrip("%"))
    assert mx > 15, "the best case should be a large reduction"
