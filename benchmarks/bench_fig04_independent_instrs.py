"""Fig. 4 — independent instructions around eager/lazy atomics."""

from repro.analysis.figures import figure4


def test_fig04_independent_instructions(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure4, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    rows = fig.row_map()
    # Eager issue happens while older instructions are still pending.
    older = [r[1] for r in fig.rows]
    assert sum(older) / len(older) > 1
    # Dependency-laden workloads start fewer younger instructions before a
    # lazy atomic than the contended trio does.
    assert rows["streamcluster"][2] < rows["pc"][2]
    assert rows["raytrace"][2] < rows["tpcc"][2]
