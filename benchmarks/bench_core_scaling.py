"""Extension: how the eager/lazy trade-off scales with core count.

The paper evaluates at 32 cores; this repo's default scale is 8. This
bench sweeps the core count on the most contended workload to show the
trend that justifies the scaled calibration (see EXPERIMENTS.md): the
eager penalty under contention grows with the number of cores hammering
the hot lines, so lazy's advantage widens as the machine grows.
"""

from dataclasses import replace

from repro.analysis.report import FigureData
from repro.analysis.parallel import RunSpec
from repro.analysis.runner import base_params, config
from repro.common.params import AtomicMode
from repro.common.stats import geomean


def core_scaling(scale, runner) -> FigureData:
    base = base_params(scale)
    fig = FigureData(
        "Ext-Scaling",
        "lazy/eager on pc vs core count (each normalized to eager at that count)",
        ["cores", "lazy_over_eager"],
    )
    counts = (2, 4, 8) if scale.name != "paper" else (8, 16, 32)
    points = []
    for cores in counts:
        params = replace(base, num_cores=cores)
        points.append((
            cores,
            config(params, AtomicMode.LAZY),
            config(params, AtomicMode.EAGER),
            replace(scale, num_threads=cores),
        ))
    runner.prefetch([
        spec
        for _, lazy, eager, at_count in points
        for cfg in (lazy, eager)
        for spec in RunSpec.for_seeds("pc", cfg, at_count)
    ])
    for cores, lazy, eager, at_count in points:
        fig.add_row(
            cores, runner.normalized_time("pc", lazy, eager, at_count)
        )
    fig.notes.append(
        "expected shape: a phase transition, not a gentle slope — below the"
        " critical core count eager wins (locks rarely collide); above it"
        " the hot lines saturate and eager collapses (the paper's 32-core"
        " regime, which the scaled profiles reproduce at 8)"
    )
    return fig


def test_core_scaling(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        core_scaling, args=(scale, runner), rounds=1, iterations=1
    )
    record_figure(fig)
    if scale.name == "smoke":
        return
    ratios = fig.column("lazy_over_eager")
    # The largest machine must favor lazy the most.
    assert ratios[-1] == min(ratios)
    assert ratios[-1] < 0.85
