"""Hot-path allocation cost of the per-instruction/per-message records.

The three highest-volume allocations in the model are :class:`DynInstr`
(one per fetched instruction), :class:`AQEntry` (one per dynamic atomic)
and :class:`Message` (several per cache miss).  All three are ``__slots__``
classes; this bench keeps that from silently regressing.

The "before" side of the delta is reconstructed live: for each slotted
dataclass we synthesize a ``__dict__``-based twin with the same fields and
compare per-instance memory, so the printed numbers stay honest as fields
are added.  Structural properties (no ``__dict__``, smaller instances) are
asserted; wall-clock allocation rates are printed for the record but not
asserted — timing assertions flake under CI load.
"""

from __future__ import annotations

import dataclasses
import sys
import time

from repro.core.dyninstr import AQEntry, DynInstr
from repro.isa.instructions import Instruction, InstrClass
from repro.memory.messages import Message, MsgKind

SLOTTED_DATACLASSES = (AQEntry, Message)
ALLOC_COUNT = 200_000


def _instance_size(obj) -> int:
    """Instance memory including the ``__dict__`` sidecar when present."""
    size = sys.getsizeof(obj)
    inst_dict = getattr(obj, "__dict__", None)
    if inst_dict is not None:
        size += sys.getsizeof(inst_dict)
    return size


def _dict_twin(cls):
    """The same dataclass, rebuilt without ``slots=True``."""
    return dataclasses.make_dataclass(
        cls.__name__ + "Dict",
        [
            (f.name, f.type, dataclasses.field(default=None))
            for f in dataclasses.fields(cls)
        ],
    )


def _sample_dyn() -> DynInstr:
    static = Instruction(seq=0, pc=0x1000, cls=InstrClass.ALU)
    return DynInstr(static, uid=0, fetch_cycle=0)


def _sample_message() -> Message:
    return Message(kind=MsgKind.GETS, line=0x40, src=0, dst=1)


def test_no_instance_dict():
    """``slots=True`` held: none of the hot records grow a ``__dict__``."""
    samples = [
        _sample_dyn(),
        AQEntry(dyn=_sample_dyn()),
        _sample_message(),
    ]
    for obj in samples:
        assert not hasattr(obj, "__dict__"), type(obj).__name__
        try:
            obj.attribute_that_does_not_exist = 1
        except AttributeError:
            pass
        else:  # pragma: no cover - regression path
            raise AssertionError(
                f"{type(obj).__name__} accepts arbitrary attributes"
            )


def test_slots_shrink_instances():
    """Each slotted dataclass beats its ``__dict__``-based twin."""
    print()
    for cls in SLOTTED_DATACLASSES:
        twin = _dict_twin(cls)
        slotted = (
            AQEntry(dyn=_sample_dyn()) if cls is AQEntry else _sample_message()
        )
        dict_based = twin()
        before, after = _instance_size(dict_based), _instance_size(slotted)
        print(
            f"  {cls.__name__:8s} dict={before:4d} B  slots={after:4d} B  "
            f"({100 * (before - after) / before:.0f}% smaller)"
        )
        assert after < before, cls.__name__


def test_allocation_rate_report():
    """Print allocation throughput for the record (not asserted)."""
    static = Instruction(seq=0, pc=0x1000, cls=InstrClass.ALU)
    print()
    for name, make in (
        ("DynInstr", lambda: DynInstr(static, uid=0, fetch_cycle=0)),
        ("AQEntry", lambda: AQEntry(dyn=None)),
        ("Message", _sample_message),
    ):
        start = time.perf_counter()
        for _ in range(ALLOC_COUNT):
            make()
        elapsed = time.perf_counter() - start
        print(f"  {name:8s} {ALLOC_COUNT / elapsed / 1e6:6.2f} M alloc/s")
