"""Fig. 6 — atomic latency breakdown, eager vs lazy."""

from repro.analysis.figures import figure6


def test_fig06_latency_breakdown(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure6, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    by_key = {(r[0], r[1]): r for r in fig.rows}
    for workload in ("pc", "sps", "tpcc"):
        eager = by_key[(workload, "eager")]
        lazy = by_key[(workload, "lazy")]
        # Lazy waits in dispatch->issue instead of holding the line locked.
        assert lazy[2] > eager[2], f"{workload}: lazy d2i should dominate"
        assert lazy[4] < 6, f"{workload}: lazy lock window should be minimal"
        assert eager[4] > lazy[4], f"{workload}: eager holds locks longer"
