"""Table I — configuration self-check and the Sec. IV-F hardware budget."""

from repro.analysis.figures import table1
from repro.common.params import SystemParams
from repro.row.cost import row_hardware_cost


def test_table1_configuration(benchmark, record_figure):
    fig = benchmark.pedantic(table1, rounds=1, iterations=1)
    record_figure(fig)
    values = {row[0]: row[1] for row in fig.rows}
    assert values["cores"] == 32
    assert values["ROB/LQ/SB entries"] == "512/192/128"
    assert values["RoW storage"] == "64 bytes"


def test_row_budget_is_64_bytes(benchmark):
    cost = benchmark.pedantic(
        row_hardware_cost,
        args=(SystemParams.paper().row, 16),
        rounds=1,
        iterations=1,
    )
    assert cost.total_storage_bytes == 64.0
