"""Fig. 9 — RoW variants (EW/RW/RW+Dir x U/D/Sat) vs eager and lazy."""

from repro.analysis.figures import figure9


def test_fig09_row_variants(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure9, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    geo = fig.row_map()["GEOMEAN"]
    cols = {name: i for i, name in enumerate(fig.columns)}
    # The best RoW variant beats both static policies on average.
    best = min(geo[cols["RW+Dir_U/D"]], geo[cols["RW+Dir_Sat"]])
    assert best < 1.0, "RoW (RW+Dir) should beat always-eager on average"
    assert best <= geo[cols["lazy"]] + 0.02
    # RW+Dir with the saturating predictor tracks lazy on pc.
    pc = fig.row_map()["pc"]
    assert pc[cols["RW+Dir_Sat"]] < 0.95
    # RoW must not slow canneal down.
    canneal = fig.row_map()["canneal"]
    assert canneal[cols["RW+Dir_Sat"]] < 1.05
