"""Fig. 12 — contention-prediction accuracy (U/D vs Sat)."""

from repro.analysis.figures import figure12


def test_fig12_predictor_accuracy(benchmark, scale, runner, record_figure):
    fig = benchmark.pedantic(
        figure12, args=(scale,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_figure(fig)
    rows = fig.row_map()
    mean = rows["MEAN"]
    assert mean[1] > 0.5 and mean[2] > 0.4
    # Non-contended workloads are trivially predictable for both.
    assert rows["canneal"][1] > 0.9
    assert rows["canneal"][2] > 0.9
