"""Legacy setup shim: enables `pip install -e .` without the wheel package
(this environment is offline; pip's PEP 660 editable path needs wheel)."""

from setuptools import setup

setup()
